// Time-correlated small-scale fading (Clarke/Jakes sum-of-sinusoids) plus a
// slowly varying shadowing process.
//
// Why sum-of-sinusoids: the generator is a pure function of time, so traces
// can be sampled at any resolution (5 ms slots for protocol replay, 0.2 ms
// packet spacing for the loss-correlation measurement of Fig 3-1) and remain
// exactly reproducible from a seed. The Doppler frequency sets the channel
// coherence time (Tc ~= 0.423 / f_d), which is the single knob that separates
// the paper's static channels (coherent over seconds) from its mobile ones
// (coherent over ~10 ms).
#pragma once

#include <vector>

#include "sim/mobility.h"
#include "util/rng.h"
#include "util/time.h"

namespace sh::channel {

/// Rayleigh/Rician fading gain as a deterministic function of "Doppler time"
/// tau = integral of f_d(t) dt (dimensionless cycles). Mean power is 1
/// (0 dB), i.e. the process only redistributes power around the mean SNR.
class FadingProcess {
 public:
  /// Rician mixing weights for a fixed K factor, hoisted out of the
  /// per-sample path: gain_db(tau, RicianMix::from_k(k)) is bit-identical
  /// to gain_db(tau, k) — the weights are the very same sqrt expressions —
  /// but a caller sampling many times at a constant K (one mobility state
  /// spans thousands of trace slots) pays the two square roots once.
  struct RicianMix {
    double scatter_scale = 1.0;  ///< sqrt(1 / (K + 1)).
    double los_amp = 0.0;        ///< sqrt(K / (K + 1)).
    static RicianMix from_k(double rician_k) noexcept;
  };

  /// `num_paths` scattered components; 8+ gives an acceptably Rayleigh-like
  /// envelope, 16 is the default.
  explicit FadingProcess(util::Rng& rng, int num_paths = 16);

  /// Power gain in dB at Doppler time `tau`, mixing a fixed line-of-sight
  /// component of Rician factor `k` (k = 0 -> pure Rayleigh) with the
  /// scattered sum. Gain is floored at -40 dB to keep downstream math finite.
  double gain_db(double tau, double rician_k = 0.0) const noexcept {
    return gain_db(tau, RicianMix::from_k(rician_k));
  }
  /// Same gain with precomputed mixing weights (the hot-path form).
  double gain_db(double tau, const RicianMix& mix) const noexcept;

  /// Reusable buffers for the block kernels, owned by the caller so one
  /// allocation serves every block of a trace.
  struct BlockScratch {
    std::vector<double> gi, gq, ang, sin_v, cos_v;
    std::vector<double> rot_c, rot_s, rot_dc, rot_ds;  ///< Fast-path rotators.
  };

  /// Block form of gain_db: out[k] is bit-identical to
  /// gain_db(tau[k], mix) for every k (the per-element arithmetic is the
  /// same detmath kernels in the same order; see DESIGN.md "Block trace
  /// kernel").
  void gain_db_n(const double* tau, std::size_t n, const RicianMix& mix,
                 double* out, BlockScratch& scratch) const;

  /// Approximate block form for --fast-trace: each path's sinusoid advances
  /// by phase rotation (seeded exactly at tau[0], stepped by the first tau
  /// difference) instead of a fresh cos per slot. Statistically equivalent
  /// (drift O(n * eps) per call — callers bound n by the block size) but
  /// NOT bit-identical to gain_db; must never feed golden-pinned artifacts.
  void gain_db_n_fast(const double* tau, std::size_t n, const RicianMix& mix,
                      double* out, BlockScratch& scratch) const;

 private:
  /// Shared tail of the block kernels: normalize, mix LOS, power -> dB.
  void compose_gain_n(std::size_t n, const RicianMix& mix, double* out,
                      BlockScratch& scratch) const noexcept;

  struct Path {
    double omega;    ///< 2*pi*cos(alpha): Doppler phase rate of this path.
    double phase_i;  ///< In-phase component phase offset.
    double phase_q;  ///< Quadrature component phase offset.
  };
  std::vector<Path> paths_;
  double los_phase_;
  double norm_;  ///< 1/sqrt(num_paths): normalizes scattered power to 1.
};

/// Maps real time to Doppler time for a mobility scenario: integrates a
/// piecewise-constant Doppler frequency (one value per motion state).
class DopplerClock {
 public:
  struct Config {
    double static_hz = 0.8;   ///< Residual environmental motion when still.
    double walking_hz = 45.0; ///< Tc ~= 9 ms, matching the paper's Fig 3-1.
    /// Vehicle Doppler scales with speed: f_d = speed_mps * hz_per_mps.
    double vehicle_hz_per_mps = 19.3;  ///< v * f_c / c at 5.8 GHz.
  };

  explicit DopplerClock(const sim::MobilityScenario& scenario)
      : DopplerClock(scenario, Config{}) {}
  DopplerClock(const sim::MobilityScenario& scenario, Config config);

  /// Doppler time (cycles elapsed) at real time `t`.
  double tau_at(Time t) const noexcept;
  /// Instantaneous Doppler frequency at real time `t`.
  double doppler_hz_at(Time t) const noexcept;

 private:
  struct Segment {
    Time start;
    double tau_start;  ///< Accumulated cycles at segment start.
    double hz;
  };

 public:
  /// Monotone segment cursor. Sequential trace generation queries the clock
  /// once per slot with non-decreasing times; the cursor advances the
  /// segment index incrementally (amortized O(1)) instead of re-scanning the
  /// segment list on every call. The arithmetic is the random-access
  /// formula verbatim, so results are bit-identical; a query that steps
  /// backwards resets the cursor and re-walks from the first segment, so
  /// monotonicity is a fast path, never a correctness requirement.
  class Cursor {
   public:
    explicit Cursor(const DopplerClock& clock) noexcept : clock_(&clock) {}

    double tau_at(Time t) noexcept {
      const Segment& seg = segment_at(t);
      return seg.tau_start + seg.hz * to_seconds(t - seg.start);
    }
    double doppler_hz_at(Time t) noexcept { return segment_at(t).hz; }

    /// Segment parameters for span-at-a-time evaluation (the block kernel):
    /// the segment containing `t` plus the time the next segment begins
    /// (Time max for the last segment). tau at any u in [start, next_start)
    /// is tau_start + hz * to_seconds(u - start) — the tau_at formula.
    struct Span {
      double tau_start;
      double hz;
      Time start;
      Time next_start;
    };
    Span span_at(Time t) noexcept;

   private:
    const Segment& segment_at(Time t) noexcept;

    const DopplerClock* clock_;
    std::size_t index_ = 0;
  };

 private:
  std::vector<Segment> segments_;
};

/// Slow shadowing (large-scale) variation in dB: a seeded sum of a few
/// low-frequency sinusoids, giving a smooth zero-mean process with the target
/// standard deviation — deterministic and randomly accessible like the fast
/// fading.
///
/// Shadowing is a function of *position*, not time: a stationary device sees
/// an almost frozen large-scale channel, while a moving one sweeps through
/// obstructions. Callers therefore evaluate the process at a motion-scaled
/// progress variable (walking-equivalent seconds, produced by a DopplerClock
/// with shadowing rates) rather than at wall-clock time.
class ShadowingProcess {
 public:
  /// `sigma_db` standard deviation; `period_s` roughly the dominant
  /// variation period in progress units.
  ShadowingProcess(util::Rng& rng, double sigma_db, double period_s = 8.0);

  double offset_db(double progress_s) const noexcept;

  /// Block form: out[k] is bit-identical to offset_db(progress_s[k]).
  void offset_db_n(const double* progress_s, std::size_t n,
                   double* out) const noexcept;

 private:
  struct Component {
    double amplitude_db;
    double omega;  ///< rad per second.
    double phase;
  };
  std::vector<Component> components_;
};

}  // namespace sh::channel
