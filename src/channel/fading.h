// Time-correlated small-scale fading (Clarke/Jakes sum-of-sinusoids) plus a
// slowly varying shadowing process.
//
// Why sum-of-sinusoids: the generator is a pure function of time, so traces
// can be sampled at any resolution (5 ms slots for protocol replay, 0.2 ms
// packet spacing for the loss-correlation measurement of Fig 3-1) and remain
// exactly reproducible from a seed. The Doppler frequency sets the channel
// coherence time (Tc ~= 0.423 / f_d), which is the single knob that separates
// the paper's static channels (coherent over seconds) from its mobile ones
// (coherent over ~10 ms).
#pragma once

#include <vector>

#include "sim/mobility.h"
#include "util/rng.h"
#include "util/time.h"

namespace sh::channel {

/// Rayleigh/Rician fading gain as a deterministic function of "Doppler time"
/// tau = integral of f_d(t) dt (dimensionless cycles). Mean power is 1
/// (0 dB), i.e. the process only redistributes power around the mean SNR.
class FadingProcess {
 public:
  /// `num_paths` scattered components; 8+ gives an acceptably Rayleigh-like
  /// envelope, 16 is the default.
  explicit FadingProcess(util::Rng& rng, int num_paths = 16);

  /// Power gain in dB at Doppler time `tau`, mixing a fixed line-of-sight
  /// component of Rician factor `k` (k = 0 -> pure Rayleigh) with the
  /// scattered sum. Gain is floored at -40 dB to keep downstream math finite.
  double gain_db(double tau, double rician_k = 0.0) const noexcept;

 private:
  struct Path {
    double cos_alpha;  ///< Arrival-angle cosine (scales the Doppler shift).
    double phase_i;    ///< In-phase component phase offset.
    double phase_q;    ///< Quadrature component phase offset.
  };
  std::vector<Path> paths_;
  double los_phase_;
  double norm_;  ///< 1/sqrt(num_paths): normalizes scattered power to 1.
};

/// Maps real time to Doppler time for a mobility scenario: integrates a
/// piecewise-constant Doppler frequency (one value per motion state).
class DopplerClock {
 public:
  struct Config {
    double static_hz = 0.8;   ///< Residual environmental motion when still.
    double walking_hz = 45.0; ///< Tc ~= 9 ms, matching the paper's Fig 3-1.
    /// Vehicle Doppler scales with speed: f_d = speed_mps * hz_per_mps.
    double vehicle_hz_per_mps = 19.3;  ///< v * f_c / c at 5.8 GHz.
  };

  explicit DopplerClock(const sim::MobilityScenario& scenario)
      : DopplerClock(scenario, Config{}) {}
  DopplerClock(const sim::MobilityScenario& scenario, Config config);

  /// Doppler time (cycles elapsed) at real time `t`.
  double tau_at(Time t) const noexcept;
  /// Instantaneous Doppler frequency at real time `t`.
  double doppler_hz_at(Time t) const noexcept;

 private:
  struct Segment {
    Time start;
    double tau_start;  ///< Accumulated cycles at segment start.
    double hz;
  };
  std::vector<Segment> segments_;
};

/// Slow shadowing (large-scale) variation in dB: a seeded sum of a few
/// low-frequency sinusoids, giving a smooth zero-mean process with the target
/// standard deviation — deterministic and randomly accessible like the fast
/// fading.
///
/// Shadowing is a function of *position*, not time: a stationary device sees
/// an almost frozen large-scale channel, while a moving one sweeps through
/// obstructions. Callers therefore evaluate the process at a motion-scaled
/// progress variable (walking-equivalent seconds, produced by a DopplerClock
/// with shadowing rates) rather than at wall-clock time.
class ShadowingProcess {
 public:
  /// `sigma_db` standard deviation; `period_s` roughly the dominant
  /// variation period in progress units.
  ShadowingProcess(util::Rng& rng, double sigma_db, double period_s = 8.0);

  double offset_db(double progress_s) const noexcept;

 private:
  struct Component {
    double amplitude_db;
    double omega;  ///< rad per second.
    double phase;
  };
  std::vector<Component> components_;
};

}  // namespace sh::channel
