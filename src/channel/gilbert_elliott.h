// Gilbert-Elliott two-state burst-loss channel.
//
// A lightweight alternative to the fading model: used in tests as a
// ground-truth channel with analytically known loss rate and burstiness, and
// in ablations to check protocol rankings are not an artefact of the fading
// generator.
#pragma once

#include "util/rng.h"
#include "util/time.h"

namespace sh::channel {

class GilbertElliott {
 public:
  struct Params {
    double p_good_to_bad = 0.05;  ///< Transition probability per step.
    double p_bad_to_good = 0.30;
    double loss_in_good = 0.01;   ///< Per-packet loss probability per state.
    double loss_in_bad = 0.70;
  };

  GilbertElliott(util::Rng rng, Params params);

  /// Advances one step (state transition) and samples one packet fate.
  /// Returns true if the packet is delivered.
  bool step();

  bool in_good_state() const noexcept { return good_; }

  /// Stationary probability of the good state.
  double stationary_good() const noexcept;
  /// Long-run packet loss probability.
  double expected_loss() const noexcept;

 private:
  util::Rng rng_;
  Params params_;
  bool good_ = true;
};

}  // namespace sh::channel
