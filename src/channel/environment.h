// Per-environment channel parameters for the paper's four experiment
// settings (Fig 3-4): office (non-line-of-sight), hallway (line-of-sight),
// outdoor pavement, and vehicular drive-by.
#pragma once

#include <string_view>

#include "channel/fading.h"

namespace sh::channel {

enum class Environment { kOffice, kHallway, kOutdoor, kVehicular };

struct EnvironmentProfile {
  std::string_view name;
  double mean_snr_db;        ///< Long-term average SNR at experiment range.
  double shadow_sigma_db;    ///< Shadowing standard deviation.
  double shadow_period_s;    ///< Dominant shadowing variation period.
  double rician_k_static;    ///< LOS strength when the device is still.
  double rician_k_mobile;    ///< LOS strength while moving (usually weaker).
  DopplerClock::Config doppler;  ///< Motion-state -> Doppler mapping.
  /// Short interference/contention bursts (a neighboring transmitter, a
  /// microwave oven, a passing body): Poisson arrivals during which the SNR
  /// drops sharply for a few milliseconds. Present whether or not the
  /// device moves — the short-term losses static-optimized protocols must
  /// smooth over rather than chase (paper Chapter 1).
  double burst_rate_hz = 1.0;
  Duration burst_mean_duration = 12 * kMillisecond;
  double burst_depth_db = 17.0;
};

/// The calibrated profile for each environment. Values are chosen so the
/// generated traces reproduce the paper's qualitative channel behaviour:
/// mobile coherence time ~10 ms, static channels stable over seconds, NLOS
/// office weaker and more shadowed than the LOS hallway, vehicular swinging
/// through the whole SNR range during a pass.
const EnvironmentProfile& environment_profile(Environment env) noexcept;

std::string_view environment_name(Environment env) noexcept;

}  // namespace sh::channel
