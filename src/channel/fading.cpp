#include "channel/fading.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sh::channel {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kGainFloorDb = -40.0;
}  // namespace

FadingProcess::RicianMix FadingProcess::RicianMix::from_k(
    double rician_k) noexcept {
  // Scattered power is E[gi^2 + gq^2] = 1. Mixing the LOS component in with
  // these weights keeps total mean power at 1: scattered gets 1/(K+1), LOS
  // gets K/(K+1).
  RicianMix mix;
  mix.scatter_scale = std::sqrt(1.0 / (rician_k + 1.0));
  mix.los_amp = std::sqrt(rician_k / (rician_k + 1.0));
  return mix;
}

FadingProcess::FadingProcess(util::Rng& rng, int num_paths)
    : los_phase_(rng.uniform(0.0, kTwoPi)),
      norm_(1.0 / std::sqrt(static_cast<double>(num_paths))) {
  assert(num_paths > 0);
  paths_.reserve(static_cast<std::size_t>(num_paths));
  for (int n = 0; n < num_paths; ++n) {
    // omega = 2*pi*cos(alpha), stored premultiplied: the per-sample phase
    // kTwoPi * cos_alpha * tau associates left, so (kTwoPi * cos_alpha) can
    // be folded at construction without changing a bit of the result.
    paths_.push_back(Path{kTwoPi * std::cos(rng.uniform(0.0, kTwoPi)),
                          rng.uniform(0.0, kTwoPi), rng.uniform(0.0, kTwoPi)});
  }
}

double FadingProcess::gain_db(double tau, const RicianMix& mix) const noexcept {
  double gi = 0.0;
  double gq = 0.0;
  for (const auto& p : paths_) {
    const double theta = p.omega * tau;
    gi += std::cos(theta + p.phase_i);
    gq += std::cos(theta + p.phase_q);
  }
  gi *= norm_;
  gq *= norm_;
  // LOS arrives head-on: its Doppler phase advances at the full rate.
  const double los_theta = kTwoPi * tau + los_phase_;
  const double i = mix.scatter_scale * gi + mix.los_amp * std::cos(los_theta);
  const double q = mix.scatter_scale * gq + mix.los_amp * std::sin(los_theta);
  const double power = i * i + q * q;
  if (power <= 0.0) return kGainFloorDb;
  const double db = 10.0 * std::log10(power);
  return db < kGainFloorDb ? kGainFloorDb : db;
}

DopplerClock::DopplerClock(const sim::MobilityScenario& scenario, Config config) {
  Time start = 0;
  double tau = 0.0;
  for (const auto& phase : scenario.phases()) {
    double hz = config.static_hz;
    switch (phase.state) {
      case sim::MotionState::kStatic:
        hz = config.static_hz;
        break;
      case sim::MotionState::kWalking:
        hz = config.walking_hz;
        break;
      case sim::MotionState::kVehicle:
        hz = std::max(config.static_hz,
                      phase.speed_mps * config.vehicle_hz_per_mps);
        break;
    }
    segments_.push_back(Segment{start, tau, hz});
    tau += hz * to_seconds(phase.duration);
    start += phase.duration;
  }
  if (segments_.empty()) segments_.push_back(Segment{0, 0.0, config.static_hz});
}

double DopplerClock::tau_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->tau_start + seg->hz * to_seconds(t - seg->start);
}

double DopplerClock::doppler_hz_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->hz;
}

const DopplerClock::Segment& DopplerClock::Cursor::segment_at(
    Time t) noexcept {
  const auto& segments = clock_->segments_;
  // Random-access fallback: a backwards step restarts the walk from the
  // first segment. Either way the selected segment is the last one whose
  // start is <= t — exactly what the linear scan in tau_at picks.
  if (segments[index_].start > t) index_ = 0;
  while (index_ + 1 < segments.size() && segments[index_ + 1].start <= t) {
    ++index_;
  }
  return segments[index_];
}

ShadowingProcess::ShadowingProcess(util::Rng& rng, double sigma_db,
                                   double period_s) {
  assert(sigma_db >= 0.0);
  assert(period_s > 0.0);
  // Four sinusoids with periods spread around `period_s`; amplitudes chosen
  // so total variance = sigma^2 (each sinusoid contributes amp^2/2).
  constexpr int kComponents = 4;
  const double per_component_amp =
      sigma_db * std::sqrt(2.0 / static_cast<double>(kComponents));
  for (int i = 0; i < kComponents; ++i) {
    const double period = period_s * rng.uniform(0.5, 2.0);
    components_.push_back(Component{per_component_amp, kTwoPi / period,
                                    rng.uniform(0.0, kTwoPi)});
  }
}

double ShadowingProcess::offset_db(double progress_s) const noexcept {
  double sum = 0.0;
  for (const auto& c : components_)
    sum += c.amplitude_db * std::sin(c.omega * progress_s + c.phase);
  return sum;
}

}  // namespace sh::channel
