#include "channel/fading.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/detmath.h"

namespace sh::channel {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kGainFloorDb = -40.0;
}  // namespace

FadingProcess::RicianMix FadingProcess::RicianMix::from_k(
    double rician_k) noexcept {
  // Scattered power is E[gi^2 + gq^2] = 1. Mixing the LOS component in with
  // these weights keeps total mean power at 1: scattered gets 1/(K+1), LOS
  // gets K/(K+1).
  RicianMix mix;
  mix.scatter_scale = std::sqrt(1.0 / (rician_k + 1.0));
  mix.los_amp = std::sqrt(rician_k / (rician_k + 1.0));
  return mix;
}

FadingProcess::FadingProcess(util::Rng& rng, int num_paths)
    : los_phase_(rng.uniform(0.0, kTwoPi)),
      norm_(1.0 / std::sqrt(static_cast<double>(num_paths))) {
  assert(num_paths > 0);
  paths_.reserve(static_cast<std::size_t>(num_paths));
  for (int n = 0; n < num_paths; ++n) {
    // omega = 2*pi*cos(alpha), stored premultiplied: the per-sample phase
    // kTwoPi * cos_alpha * tau associates left, so (kTwoPi * cos_alpha) can
    // be folded at construction without changing a bit of the result.
    paths_.push_back(Path{kTwoPi * std::cos(rng.uniform(0.0, kTwoPi)),
                          rng.uniform(0.0, kTwoPi), rng.uniform(0.0, kTwoPi)});
  }
}

double FadingProcess::gain_db(double tau, const RicianMix& mix) const noexcept {
  // detmath::dcos/dsin rather than libm: the block kernel (gain_db_n)
  // evaluates the same sinusoids over whole slot arrays, and only the
  // repo-owned kernels guarantee the batched evaluation is bit-identical
  // to this scalar walk (see util/detmath.h).
  double gi = 0.0;
  double gq = 0.0;
  for (const auto& p : paths_) {
    const double theta = p.omega * tau;
    gi += util::detmath::dcos(theta + p.phase_i);
    gq += util::detmath::dcos(theta + p.phase_q);
  }
  gi *= norm_;
  gq *= norm_;
  // LOS arrives head-on: its Doppler phase advances at the full rate.
  const double los_theta = kTwoPi * tau + los_phase_;
  const double i =
      mix.scatter_scale * gi + mix.los_amp * util::detmath::dcos(los_theta);
  const double q =
      mix.scatter_scale * gq + mix.los_amp * util::detmath::dsin(los_theta);
  const double power = i * i + q * q;
  if (power <= 0.0) return kGainFloorDb;
  const double db = 10.0 * std::log10(power);
  return db < kGainFloorDb ? kGainFloorDb : db;
}

void FadingProcess::compose_gain_n(std::size_t n, const RicianMix& mix,
                                   double* out,
                                   BlockScratch& scratch) const noexcept {
  // Tail of gain_db after the scattered sums: identical expression shapes,
  // element by element (the project targets a no-FMA baseline ISA, so plain
  // mul/add here can never be contracted differently from the scalar path).
  const double* gi = scratch.gi.data();
  const double* gq = scratch.gq.data();
  const double* ls = scratch.sin_v.data();
  const double* lc = scratch.cos_v.data();
  for (std::size_t k = 0; k < n; ++k) {
    const double gin = gi[k] * norm_;
    const double gqn = gq[k] * norm_;
    const double i = mix.scatter_scale * gin + mix.los_amp * lc[k];
    const double q = mix.scatter_scale * gqn + mix.los_amp * ls[k];
    const double power = i * i + q * q;
    if (power <= 0.0) {
      out[k] = kGainFloorDb;
      continue;
    }
    const double db = 10.0 * std::log10(power);
    out[k] = db < kGainFloorDb ? kGainFloorDb : db;
  }
}

void FadingProcess::gain_db_n(const double* tau, std::size_t n,
                              const RicianMix& mix, double* out,
                              BlockScratch& scratch) const {
  scratch.gi.assign(n, 0.0);
  scratch.gq.assign(n, 0.0);
  scratch.ang.resize(n);
  scratch.sin_v.resize(n);
  scratch.cos_v.resize(n);
  for (const auto& p : paths_) {
    util::detmath::fade_path_accumulate_n(tau, n, p.omega, p.phase_i,
                                          p.phase_q, scratch.gi.data(),
                                          scratch.gq.data());
  }
  double* ang = scratch.ang.data();
  for (std::size_t k = 0; k < n; ++k) ang[k] = kTwoPi * tau[k] + los_phase_;
  util::detmath::sincos_n(ang, n, scratch.sin_v.data(), scratch.cos_v.data());
  compose_gain_n(n, mix, out, scratch);
}

void FadingProcess::gain_db_n_fast(const double* tau, std::size_t n,
                                   const RicianMix& mix, double* out,
                                   BlockScratch& scratch) const {
  if (n == 0) return;
  const std::size_t np = paths_.size();
  scratch.gi.resize(n);
  scratch.gq.resize(n);
  scratch.sin_v.resize(n);
  scratch.cos_v.resize(n);
  // 2*np rotators: lanes [0, np) track cos(omega*tau + phase_i) for gi,
  // lanes [np, 2*np) track the phase_q set for gq. Every lane is seeded
  // exactly (dsincos at tau[0]) and stepped by the first tau difference —
  // within one mobility/Doppler span tau is affine in the slot index, so
  // the only divergence from the exact path is the rotation round-off.
  scratch.rot_c.resize(2 * np);
  scratch.rot_s.resize(2 * np);
  scratch.rot_dc.resize(2 * np);
  scratch.rot_ds.resize(2 * np);
  const double dtau = n >= 2 ? tau[1] - tau[0] : 0.0;
  for (std::size_t p = 0; p < np; ++p) {
    const double theta = paths_[p].omega * tau[0];
    util::detmath::dsincos(theta + paths_[p].phase_i, scratch.rot_s[p],
                           scratch.rot_c[p]);
    util::detmath::dsincos(theta + paths_[p].phase_q, scratch.rot_s[np + p],
                           scratch.rot_c[np + p]);
    double step_s = 0.0;
    double step_c = 1.0;
    util::detmath::dsincos(paths_[p].omega * dtau, step_s, step_c);
    scratch.rot_dc[p] = step_c;
    scratch.rot_ds[p] = step_s;
    scratch.rot_dc[np + p] = step_c;
    scratch.rot_ds[np + p] = step_s;
  }
  util::detmath::rotator_sum_block(scratch.rot_c.data(), scratch.rot_s.data(),
                                   scratch.rot_dc.data(), scratch.rot_ds.data(),
                                   np, n, scratch.gi.data());
  util::detmath::rotator_sum_block(
      scratch.rot_c.data() + np, scratch.rot_s.data() + np,
      scratch.rot_dc.data() + np, scratch.rot_ds.data() + np, np, n,
      scratch.gq.data());
  // LOS rotator, emitting both coordinates per slot.
  double los_s = 0.0;
  double los_c = 1.0;
  util::detmath::dsincos(kTwoPi * tau[0] + los_phase_, los_s, los_c);
  double dls = 0.0;
  double dlc = 1.0;
  util::detmath::dsincos(kTwoPi * dtau, dls, dlc);
  util::detmath::rotator_emit_block(los_c, los_s, dlc, dls, n,
                                    scratch.cos_v.data(),
                                    scratch.sin_v.data());
  compose_gain_n(n, mix, out, scratch);
}

DopplerClock::DopplerClock(const sim::MobilityScenario& scenario, Config config) {
  Time start = 0;
  double tau = 0.0;
  for (const auto& phase : scenario.phases()) {
    double hz = config.static_hz;
    switch (phase.state) {
      case sim::MotionState::kStatic:
        hz = config.static_hz;
        break;
      case sim::MotionState::kWalking:
        hz = config.walking_hz;
        break;
      case sim::MotionState::kVehicle:
        hz = std::max(config.static_hz,
                      phase.speed_mps * config.vehicle_hz_per_mps);
        break;
    }
    segments_.push_back(Segment{start, tau, hz});
    tau += hz * to_seconds(phase.duration);
    start += phase.duration;
  }
  if (segments_.empty()) segments_.push_back(Segment{0, 0.0, config.static_hz});
}

double DopplerClock::tau_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->tau_start + seg->hz * to_seconds(t - seg->start);
}

double DopplerClock::doppler_hz_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->hz;
}

const DopplerClock::Segment& DopplerClock::Cursor::segment_at(
    Time t) noexcept {
  const auto& segments = clock_->segments_;
  // Random-access fallback: a backwards step restarts the walk from the
  // first segment. Either way the selected segment is the last one whose
  // start is <= t — exactly what the linear scan in tau_at picks.
  if (segments[index_].start > t) index_ = 0;
  while (index_ + 1 < segments.size() && segments[index_ + 1].start <= t) {
    ++index_;
  }
  return segments[index_];
}

DopplerClock::Cursor::Span DopplerClock::Cursor::span_at(Time t) noexcept {
  const Segment& seg = segment_at(t);
  const auto& segments = clock_->segments_;
  const Time next = index_ + 1 < segments.size()
                        ? segments[index_ + 1].start
                        : std::numeric_limits<Time>::max();
  return Span{seg.tau_start, seg.hz, seg.start, next};
}

ShadowingProcess::ShadowingProcess(util::Rng& rng, double sigma_db,
                                   double period_s) {
  assert(sigma_db >= 0.0);
  assert(period_s > 0.0);
  // Four sinusoids with periods spread around `period_s`; amplitudes chosen
  // so total variance = sigma^2 (each sinusoid contributes amp^2/2).
  constexpr int kComponents = 4;
  const double per_component_amp =
      sigma_db * std::sqrt(2.0 / static_cast<double>(kComponents));
  for (int i = 0; i < kComponents; ++i) {
    const double period = period_s * rng.uniform(0.5, 2.0);
    components_.push_back(Component{per_component_amp, kTwoPi / period,
                                    rng.uniform(0.0, kTwoPi)});
  }
}

double ShadowingProcess::offset_db(double progress_s) const noexcept {
  double sum = 0.0;
  for (const auto& c : components_)
    sum += c.amplitude_db * util::detmath::dsin(c.omega * progress_s + c.phase);
  return sum;
}

void ShadowingProcess::offset_db_n(const double* progress_s, std::size_t n,
                                   double* out) const noexcept {
  // Component-by-component accumulation in the same order as offset_db, so
  // out[k]'s sum sequence is the scalar one.
  for (std::size_t k = 0; k < n; ++k) out[k] = 0.0;
  for (const auto& c : components_) {
    util::detmath::sinusoid_accumulate_n(progress_s, n, c.amplitude_db,
                                         c.omega, c.phase, out);
  }
}

}  // namespace sh::channel
