#include "channel/fading.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace sh::channel {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kGainFloorDb = -40.0;
}  // namespace

FadingProcess::FadingProcess(util::Rng& rng, int num_paths)
    : los_phase_(rng.uniform(0.0, kTwoPi)),
      norm_(1.0 / std::sqrt(static_cast<double>(num_paths))) {
  assert(num_paths > 0);
  paths_.reserve(static_cast<std::size_t>(num_paths));
  for (int n = 0; n < num_paths; ++n) {
    paths_.push_back(Path{std::cos(rng.uniform(0.0, kTwoPi)),
                          rng.uniform(0.0, kTwoPi), rng.uniform(0.0, kTwoPi)});
  }
}

double FadingProcess::gain_db(double tau, double rician_k) const noexcept {
  double gi = 0.0;
  double gq = 0.0;
  for (const auto& p : paths_) {
    const double theta = kTwoPi * p.cos_alpha * tau;
    gi += std::cos(theta + p.phase_i);
    gq += std::cos(theta + p.phase_q);
  }
  gi *= norm_;
  gq *= norm_;
  // Scattered power is E[gi^2 + gq^2] = 1. Mix in the LOS component so total
  // mean power stays 1: scattered gets 1/(K+1), LOS gets K/(K+1).
  const double scatter_scale = std::sqrt(1.0 / (rician_k + 1.0));
  const double los_amp = std::sqrt(rician_k / (rician_k + 1.0));
  // LOS arrives head-on: its Doppler phase advances at the full rate.
  const double los_theta = kTwoPi * tau + los_phase_;
  const double i = scatter_scale * gi + los_amp * std::cos(los_theta);
  const double q = scatter_scale * gq + los_amp * std::sin(los_theta);
  const double power = i * i + q * q;
  if (power <= 0.0) return kGainFloorDb;
  const double db = 10.0 * std::log10(power);
  return db < kGainFloorDb ? kGainFloorDb : db;
}

DopplerClock::DopplerClock(const sim::MobilityScenario& scenario, Config config) {
  Time start = 0;
  double tau = 0.0;
  for (const auto& phase : scenario.phases()) {
    double hz = config.static_hz;
    switch (phase.state) {
      case sim::MotionState::kStatic:
        hz = config.static_hz;
        break;
      case sim::MotionState::kWalking:
        hz = config.walking_hz;
        break;
      case sim::MotionState::kVehicle:
        hz = std::max(config.static_hz,
                      phase.speed_mps * config.vehicle_hz_per_mps);
        break;
    }
    segments_.push_back(Segment{start, tau, hz});
    tau += hz * to_seconds(phase.duration);
    start += phase.duration;
  }
  if (segments_.empty()) segments_.push_back(Segment{0, 0.0, config.static_hz});
}

double DopplerClock::tau_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->tau_start + seg->hz * to_seconds(t - seg->start);
}

double DopplerClock::doppler_hz_at(Time t) const noexcept {
  const Segment* seg = &segments_.front();
  for (const auto& s : segments_) {
    if (s.start > t) break;
    seg = &s;
  }
  return seg->hz;
}

ShadowingProcess::ShadowingProcess(util::Rng& rng, double sigma_db,
                                   double period_s) {
  assert(sigma_db >= 0.0);
  assert(period_s > 0.0);
  // Four sinusoids with periods spread around `period_s`; amplitudes chosen
  // so total variance = sigma^2 (each sinusoid contributes amp^2/2).
  constexpr int kComponents = 4;
  const double per_component_amp =
      sigma_db * std::sqrt(2.0 / static_cast<double>(kComponents));
  for (int i = 0; i < kComponents; ++i) {
    const double period = period_s * rng.uniform(0.5, 2.0);
    components_.push_back(Component{per_component_amp, kTwoPi / period,
                                    rng.uniform(0.0, kTwoPi)});
  }
}

double ShadowingProcess::offset_db(double progress_s) const noexcept {
  double sum = 0.0;
  for (const auto& c : components_)
    sum += c.amplitude_db * std::sin(c.omega * progress_s + c.phase);
  return sum;
}

}  // namespace sh::channel
