// SNR -> frame delivery probability model.
//
// Each 802.11a rate has a sensitivity threshold (mac::RateInfo::min_snr_db);
// delivery probability follows a logistic curve around it, which matches the
// steep-but-not-vertical packet-error waterfalls of real OFDM receivers.
// Frame length scales the effective threshold slightly (longer frames need a
// little more margin).
#pragma once

#include <array>
#include <cmath>

#include "mac/rates.h"
#include "util/detmath.h"

namespace sh::channel {

struct SnrModelParams {
  /// Conditional-on-channel-realization PER slope. For a 1000-byte OFDM
  /// frame at a *fixed* channel the error waterfall is close to a step
  /// (~1.5 dB from 10% to 90% loss); the gentle multi-dB curves seen in
  /// field measurements come from fading, which this library models
  /// explicitly in ChannelRealization rather than baking into the PER.
  double transition_width_db = 0.35;
  int reference_bytes = 1000;        ///< Frame size the thresholds assume.
};

/// Probability that a frame of `payload_bytes` at rate `rate` is delivered
/// when the channel SNR is `snr_db`. Monotone in SNR, decreasing in rate
/// index and frame size. Result in [0, 1].
double delivery_probability(double snr_db, mac::RateIndex rate,
                            int payload_bytes = 1000,
                            const SnrModelParams& params = {});

/// The highest rate whose delivery probability at `snr_db` is at least
/// `target` (defaults to 90%), or the slowest rate if none qualifies.
/// This is the "SNR-to-bit-rate mapping" that RBAR and CHARM use.
mac::RateIndex best_rate_for_snr(double snr_db, double target = 0.9,
                                 int payload_bytes = 1000,
                                 const SnrModelParams& params = {});

/// Per-rate delivery thresholds precomputed for one (payload, params) pair.
/// probability(snr, r) is bit-identical to delivery_probability(snr, r,
/// payload, params) — the threshold doubles come from the same expressions
/// and the logistic arithmetic is unchanged — but the frame-length log2,
/// constant across a trace, is paid once instead of once per slot per rate.
class DeliveryModel {
 public:
  explicit DeliveryModel(int payload_bytes = 1000, SnrModelParams params = {});

  double probability(double snr_db, mac::RateIndex rate) const noexcept {
    // util::detmath::dexp rather than std::exp so the batched form
    // (probabilities_n) is bit-identical to this per-slot call.
    const double x = (snr_db - threshold_db_[static_cast<std::size_t>(rate)]) /
                     transition_width_db_;
    return 1.0 / (1.0 + util::detmath::dexp(-x));
  }

  /// Block form: out[k] is bit-identical to probability(snr_db[k], rate).
  /// `scratch` must hold at least n doubles.
  void probabilities_n(const double* snr_db, std::size_t n,
                       mac::RateIndex rate, double* out,
                       double* scratch) const noexcept;

 private:
  std::array<double, mac::kNumRates> threshold_db_{};
  double transition_width_db_;
};

}  // namespace sh::channel
