#include "channel/environment.h"

namespace sh::channel {

const EnvironmentProfile& environment_profile(Environment env) noexcept {
  // Mean SNR anchors: hallway LOS supports 54M most of the time (>= ~22 dB),
  // office NLOS sits around the 24-36M thresholds so rate choice matters,
  // outdoor in between, vehicular nominal at closest approach (path loss on
  // top of this is applied by the trace generator's distance profile).
  // Static Doppler is a residual of distant environmental motion: the
  // channel of a truly still device is coherent over many seconds, which is
  // what lets static protocols trust long histories (and what the paper's
  // Chapter 4 static probing results demonstrate).
  static const EnvironmentProfile kOffice{
      "office", 18.0, 5.0, 6.0, 2.0, 1.0, {0.001, 45.0, 19.3},
      1.4, 12 * kMillisecond, 18.0};
  static const EnvironmentProfile kHallway{
      "hallway", 25.0, 4.0, 10.0, 8.0, 0.8, {0.0008, 45.0, 19.3},
      1.0, 10 * kMillisecond, 16.0};
  static const EnvironmentProfile kOutdoor{
      "outdoor", 22.0, 4.5, 8.0, 4.0, 1.0, {0.0012, 45.0, 19.3},
      1.2, 10 * kMillisecond, 16.0};
  static const EnvironmentProfile kVehicular{
      "vehicular", 27.0, 4.0, 4.0, 5.0, 1.5, {0.001, 45.0, 19.3},
      0.8, 10 * kMillisecond, 16.0};
  switch (env) {
    case Environment::kOffice: return kOffice;
    case Environment::kHallway: return kHallway;
    case Environment::kOutdoor: return kOutdoor;
    case Environment::kVehicular: return kVehicular;
  }
  return kOffice;
}

std::string_view environment_name(Environment env) noexcept {
  return environment_profile(env).name;
}

}  // namespace sh::channel
