// Process-wide memoization of generated packet-fate traces.
//
// A sweep that varies only protocol parameters (the common shsweep study:
// one channel, many hint/staleness settings) re-requests the exact same
// TraceGeneratorConfig once per sweep point. generate_trace is a pure
// function of its config, so those requests can share one generated trace;
// the cache hands out shared_ptr<const> snapshots, which makes a hit safe
// to consume from any pool worker.
//
// Determinism: a cached trace is byte-identical to a freshly generated one
// (same pure function, same config), so cache hits, misses, and evictions
// can never change experiment output — they change only how often the
// generator runs. Eviction policy is deterministic given the sequence of
// insertions (FIFO by first insertion); under a thread pool the insertion
// order may vary with scheduling, which affects only which configs get
// regenerated, never their contents.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "channel/trace_generator.h"

namespace sh::channel {

/// Canonical byte-exact key for a TraceGeneratorConfig: every field — the
/// environment, the fast-trace mode, each mobility phase, seed,
/// slot/payload, the SNR offsets and noise, the shadowing scale and clock,
/// and the drive-by geometry — serialized in a fixed order, doubles as raw
/// IEEE-754 bit patterns. Two configs share a key iff generate_trace is
/// guaranteed to produce the same trace.
std::string trace_config_key(const TraceGeneratorConfig& config);

/// Stable 64-bit FNV-1a hash of trace_config_key. shbench records it in
/// sh.bench.v1 output so a benchmark is only ever compared against a
/// baseline generated from the identical workload.
std::uint64_t trace_config_hash(const TraceGeneratorConfig& config);

/// Bounded, thread-safe trace cache. Concurrent get_or_generate calls for
/// the same config generate the trace once: the first caller publishes an
/// in-flight future under the lock and generates outside it, later callers
/// wait on that future instead of duplicating the work.
class TraceCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` is the maximum number of resident traces; 0 disables
  /// caching (get_or_generate degenerates to plain generate_trace).
  explicit TraceCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the trace for `config`, generating it on first request.
  /// Exceptions from generate_trace (invalid config) propagate to every
  /// caller waiting on that config and leave the cache without the entry.
  std::shared_ptr<const PacketFateTrace> get_or_generate(
      const TraceGeneratorConfig& config);

  std::size_t capacity() const;
  /// Shrinking below the resident count evicts oldest-first immediately.
  void set_capacity(std::size_t capacity);
  std::size_t size() const;
  void clear();
  Stats stats() const;

  static constexpr std::size_t kDefaultCapacity = 64;

 private:
  using TracePtr = std::shared_ptr<const PacketFateTrace>;

  struct Entry {
    std::shared_future<TracePtr> future;
    std::list<std::string>::iterator order_it;
  };

  /// Pops insertion-order entries until size() < capacity. Requires lock.
  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> order_;  ///< FIFO eviction order (oldest first).
  Stats stats_;
};

/// The process-wide cache behind generate_trace_cached.
TraceCache& global_trace_cache();

/// generate_trace through the global cache. The returned trace is shared —
/// callers must treat it as immutable (the type enforces this).
std::shared_ptr<const PacketFateTrace> generate_trace_cached(
    const TraceGeneratorConfig& config);

}  // namespace sh::channel
