#include "channel/gilbert_elliott.h"

namespace sh::channel {

GilbertElliott::GilbertElliott(util::Rng rng, Params params)
    : rng_(rng), params_(params) {}

bool GilbertElliott::step() {
  if (good_) {
    if (rng_.bernoulli(params_.p_good_to_bad)) good_ = false;
  } else {
    if (rng_.bernoulli(params_.p_bad_to_good)) good_ = true;
  }
  const double loss = good_ ? params_.loss_in_good : params_.loss_in_bad;
  return !rng_.bernoulli(loss);
}

double GilbertElliott::stationary_good() const noexcept {
  const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
  if (denom <= 0.0) return 1.0;
  return params_.p_bad_to_good / denom;
}

double GilbertElliott::expected_loss() const noexcept {
  const double pg = stationary_good();
  return pg * params_.loss_in_good + (1.0 - pg) * params_.loss_in_bad;
}

}  // namespace sh::channel
