#include "channel/trace_stats.h"

#include <cassert>

namespace sh::channel {

LossCorrelation loss_correlation(const std::vector<bool>& delivered,
                                 int max_lag) {
  assert(max_lag >= 1);
  LossCorrelation out;
  const std::size_t n = delivered.size();
  std::size_t losses = 0;
  for (bool d : delivered)
    if (!d) ++losses;
  out.unconditional_loss =
      n == 0 ? 0.0 : static_cast<double>(losses) / static_cast<double>(n);

  out.conditional_loss.resize(static_cast<std::size_t>(max_lag),
                              out.unconditional_loss);
  for (int k = 1; k <= max_lag; ++k) {
    std::size_t base = 0;   // packets i that were lost and have an i+k
    std::size_t joint = 0;  // ... where i+k was also lost
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) < n; ++i) {
      if (delivered[i]) continue;
      ++base;
      if (!delivered[i + static_cast<std::size_t>(k)]) ++joint;
    }
    if (base > 0) {
      out.conditional_loss[static_cast<std::size_t>(k - 1)] =
          static_cast<double>(joint) / static_cast<double>(base);
    }
  }
  return out;
}

std::vector<DeliveryPoint> delivery_series(const PacketFateTrace& trace,
                                           mac::RateIndex rate,
                                           Duration bucket) {
  assert(mac::valid_rate(rate));
  assert(bucket > 0);
  std::vector<DeliveryPoint> out;
  const auto slots_per_bucket = static_cast<std::size_t>(
      bucket / trace.slot_duration());
  if (slots_per_bucket == 0 || trace.empty()) return out;

  for (std::size_t start = 0; start + slots_per_bucket <= trace.size();
       start += slots_per_bucket) {
    std::size_t delivered_count = 0;
    std::size_t moving_count = 0;
    for (std::size_t i = start; i < start + slots_per_bucket; ++i) {
      const auto& slot = trace.slot(i);
      if (slot.delivered[static_cast<std::size_t>(rate)]) ++delivered_count;
      if (slot.moving) ++moving_count;
    }
    DeliveryPoint point;
    point.time_s = to_seconds(static_cast<Time>(start) * trace.slot_duration());
    point.delivery_ratio = static_cast<double>(delivered_count) /
                           static_cast<double>(slots_per_bucket);
    point.moving = moving_count * 2 >= slots_per_bucket;
    out.push_back(point);
  }
  return out;
}

}  // namespace sh::channel
