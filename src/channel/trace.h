// Packet-fate trace: the paper's experimental substrate.
//
// The paper's measurement rig cycles through all eight 802.11a rates once per
// ~5 ms and logs, for every 5 ms slot, whether a 1000-byte packet at each rate
// was received. Their modified ns-3 then bypasses the PHY and replays the
// recorded fates. PacketFateTrace is exactly that artifact: per-slot fates at
// every rate, plus the slot's ground-truth SNR (consumed by the SNR-based
// protocols RBAR/CHARM) and ground-truth motion flag (consumed by evaluation,
// never by protocols — protocols only see sensor-derived hints).
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <vector>

#include "mac/rates.h"
#include "util/time.h"

namespace sh::channel {

struct TraceSlot {
  std::array<bool, mac::kNumRates> delivered{};
  float snr_db = 0.0F;
  bool moving = false;
};

class PacketFateTrace {
 public:
  explicit PacketFateTrace(Duration slot_duration = 5 * kMillisecond)
      : slot_duration_(slot_duration) {}

  void reserve(std::size_t slots) { slots_.reserve(slots); }
  void push_back(const TraceSlot& slot) { slots_.push_back(slot); }

  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }
  Duration slot_duration() const noexcept { return slot_duration_; }
  Duration duration() const noexcept {
    return slot_duration_ * static_cast<Duration>(slots_.size());
  }

  const TraceSlot& slot(std::size_t i) const { return slots_.at(i); }

  /// Slot index covering time `t`; clamped to the last slot for t past the
  /// end so replay of a slightly-overrunning experiment stays defined.
  std::size_t slot_index(Time t) const noexcept;

  /// Fate of a packet sent at time `t` and rate `rate`. Packets in the same
  /// slot at the same rate share fate (as in the paper's replay).
  bool delivered(Time t, mac::RateIndex rate) const;
  double snr_db(Time t) const;
  bool moving(Time t) const;

  /// Fraction of slots delivered at `rate` over the whole trace.
  double delivery_ratio(mac::RateIndex rate) const;

  /// Plain-text serialization (one line per slot: fates bitmask, snr,
  /// moving). Round-trips exactly.
  void save(std::ostream& os) const;
  static std::optional<PacketFateTrace> load(std::istream& is);

 private:
  Duration slot_duration_;
  std::vector<TraceSlot> slots_;
};

}  // namespace sh::channel
