#include "channel/trace_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sh::channel {

ChannelRealization::ChannelRealization(Environment env,
                                       sim::MobilityScenario scenario,
                                       std::uint64_t seed,
                                       DriveByGeometry geometry,
                                       double snr_offset_db,
                                       double shadow_sigma_scale,
                                       DopplerClock::Config shadow_clock)
    : profile_(&environment_profile(env)),
      scenario_(std::move(scenario)),
      env_(env),
      geometry_(geometry),
      snr_offset_db_(snr_offset_db),
      rng_(seed),
      fading_(rng_),
      doppler_(scenario_, profile_->doppler),
      // Shadowing progress: ~frozen while still, faster while moving (the
      // device sweeps through obstructions proportionally to distance).
      shadow_clock_(scenario_, shadow_clock),
      shadowing_(rng_, profile_->shadow_sigma_db * shadow_sigma_scale,
                 profile_->shadow_period_s) {
  // Precompute cumulative travelled distance at each phase boundary so the
  // vehicular drive-by position is randomly accessible.
  Time start = 0;
  double metres = 0.0;
  for (const auto& phase : scenario_.phases()) {
    distance_checkpoints_.emplace_back(start, metres);
    metres += phase.speed_mps * to_seconds(phase.duration);
    start += phase.duration;
  }
  if (distance_checkpoints_.empty()) distance_checkpoints_.emplace_back(0, 0.0);

  // Precompute the interference-burst schedule (Poisson arrivals,
  // exponential durations) so burst membership is random-access.
  if (profile_->burst_rate_hz > 0.0) {
    const double mean_gap_us = 1e6 / profile_->burst_rate_hz;
    Time t = static_cast<Time>(rng_.exponential(mean_gap_us));
    const Time end = scenario_.total_duration();
    while (t < end) {
      const auto duration = static_cast<Duration>(rng_.exponential(
          static_cast<double>(profile_->burst_mean_duration)));
      bursts_.emplace_back(t, t + duration);
      t += duration + static_cast<Time>(rng_.exponential(mean_gap_us));
    }
  }
}

bool ChannelRealization::in_burst(Time t) const {
  // Bursts are sorted; binary search for the first burst ending after t.
  const auto it = std::lower_bound(
      bursts_.begin(), bursts_.end(), t,
      [](const std::pair<Time, Time>& b, Time value) { return b.second <= value; });
  return it != bursts_.end() && it->first <= t;
}

double ChannelRealization::distance_path_loss_db(Time t) const {
  if (env_ != Environment::kVehicular) return 0.0;
  // Cumulative distance travelled by time t.
  const std::pair<Time, double>* cp = &distance_checkpoints_.front();
  for (const auto& c : distance_checkpoints_) {
    if (c.first > t) break;
    cp = &c;
  }
  const double s =
      cp->second + scenario_.speed_at(t) * to_seconds(t - cp->first);
  // Shuttle along [-L, L]: position is a triangle wave of travelled
  // distance, phased so the car starts at start_position_m heading +.
  const double length = geometry_.road_half_length_m;
  const double cycle = 4.0 * length;
  double m = std::fmod(s + geometry_.start_position_m + length, cycle);
  if (m < 0.0) m += cycle;
  const double pos = (m < 2.0 * length) ? (-length + m) : (3.0 * length - m);
  const double dist = std::hypot(geometry_.lateral_offset_m, pos);
  return 10.0 * geometry_.path_loss_exponent *
         std::log10(dist / geometry_.lateral_offset_m);
}

double ChannelRealization::snr_db_at(Time t) const {
  const bool moving = scenario_.moving_at(t);
  const double k =
      moving ? profile_->rician_k_mobile : profile_->rician_k_static;
  const double fade = fading_.gain_db(doppler_.tau_at(t), k);
  const double burst = in_burst(t) ? profile_->burst_depth_db : 0.0;
  return profile_->mean_snr_db + snr_offset_db_ - distance_path_loss_db(t) +
         shadowing_.offset_db(shadow_clock_.tau_at(t)) + fade - burst;
}

double ChannelRealization::delivery_probability_at(Time t, mac::RateIndex rate,
                                                   int payload_bytes) const {
  return delivery_probability(snr_db_at(t), rate, payload_bytes);
}

bool ChannelRealization::sample_delivery(Time t, mac::RateIndex rate,
                                         util::Rng& rng,
                                         int payload_bytes) const {
  return rng.bernoulli(delivery_probability_at(t, rate, payload_bytes));
}

ChannelRealization::Cursor::Cursor(const ChannelRealization& channel) noexcept
    : ch_(&channel),
      doppler_(channel.doppler_),
      shadow_(channel.shadow_clock_),
      mix_static_(
          FadingProcess::RicianMix::from_k(channel.profile_->rician_k_static)),
      mix_mobile_(
          FadingProcess::RicianMix::from_k(channel.profile_->rician_k_mobile)) {
}

const sim::MobilityPhase& ChannelRealization::Cursor::phase_at(
    Time t) noexcept {
  // Same selection as MobilityScenario::phase_at: the first phase whose
  // [start, start + duration) interval contains t, or the last phase for t
  // past the end of the script.
  const auto& phases = ch_->scenario_.phases();
  if (t < phase_start_) {  // Backwards step: random-access fallback.
    phase_index_ = 0;
    phase_start_ = 0;
  }
  while (phase_index_ + 1 < phases.size() &&
         t >= phase_start_ + phases[phase_index_].duration) {
    phase_start_ += phases[phase_index_].duration;
    ++phase_index_;
  }
  return phases[phase_index_];
}

bool ChannelRealization::Cursor::in_burst(Time t) noexcept {
  // Same selection as the lower_bound in ChannelRealization::in_burst: the
  // first burst ending after t. Bursts are sorted and non-overlapping, so
  // for monotone t the index only ever moves forward.
  const auto& bursts = ch_->bursts_;
  if (burst_index_ > 0 && burst_index_ <= bursts.size() &&
      bursts[burst_index_ - 1].second > t) {
    burst_index_ = 0;  // Backwards step: random-access fallback.
  }
  while (burst_index_ < bursts.size() && bursts[burst_index_].second <= t) {
    ++burst_index_;
  }
  return burst_index_ < bursts.size() && bursts[burst_index_].first <= t;
}

double ChannelRealization::Cursor::distance_path_loss_db(Time t) noexcept {
  if (ch_->env_ != Environment::kVehicular) return 0.0;
  // Same checkpoint selection as ChannelRealization::distance_path_loss_db
  // (the last checkpoint at or before t), then the identical geometry math.
  const auto& checkpoints = ch_->distance_checkpoints_;
  if (checkpoints[checkpoint_index_].first > t) checkpoint_index_ = 0;
  while (checkpoint_index_ + 1 < checkpoints.size() &&
         checkpoints[checkpoint_index_ + 1].first <= t) {
    ++checkpoint_index_;
  }
  const std::pair<Time, double>& cp = checkpoints[checkpoint_index_];
  const double s = cp.second + phase_at(t).speed_mps * to_seconds(t - cp.first);
  const DriveByGeometry& geometry = ch_->geometry_;
  const double length = geometry.road_half_length_m;
  const double cycle = 4.0 * length;
  double m = std::fmod(s + geometry.start_position_m + length, cycle);
  if (m < 0.0) m += cycle;
  const double pos = (m < 2.0 * length) ? (-length + m) : (3.0 * length - m);
  const double dist = std::hypot(geometry.lateral_offset_m, pos);
  return 10.0 * geometry.path_loss_exponent *
         std::log10(dist / geometry.lateral_offset_m);
}

double ChannelRealization::Cursor::snr_db_at(Time t) noexcept {
  // Term-for-term the expression in ChannelRealization::snr_db_at, with each
  // piecewise lookup served by a cursor instead of a scan.
  const bool moving = sim::is_moving(phase_at(t).state);
  const FadingProcess::RicianMix& mix = moving ? mix_mobile_ : mix_static_;
  const double fade = ch_->fading_.gain_db(doppler_.tau_at(t), mix);
  const double burst = in_burst(t) ? ch_->profile_->burst_depth_db : 0.0;
  return ch_->profile_->mean_snr_db + ch_->snr_offset_db_ -
         distance_path_loss_db(t) +
         ch_->shadowing_.offset_db(shadow_.tau_at(t)) + fade - burst;
}

bool ChannelRealization::Cursor::moving_at(Time t) noexcept {
  return sim::is_moving(phase_at(t).state);
}

ChannelRealization::BlockSampler::BlockSampler(
    const ChannelRealization& channel, bool fast) noexcept
    : ch_(&channel),
      fast_(fast),
      doppler_(channel.doppler_),
      shadow_(channel.shadow_clock_),
      mix_static_(
          FadingProcess::RicianMix::from_k(channel.profile_->rician_k_static)),
      mix_mobile_(
          FadingProcess::RicianMix::from_k(channel.profile_->rician_k_mobile)) {
}

const sim::MobilityPhase& ChannelRealization::BlockSampler::phase_walk(
    Time t, Time& next_start) noexcept {
  // Identical selection to Cursor::phase_at, plus the time at which the
  // selection would change (Time max while in the last phase, which extends
  // past the end of the script).
  const auto& phases = ch_->scenario_.phases();
  if (t < phase_start_) {
    phase_index_ = 0;
    phase_start_ = 0;
  }
  while (phase_index_ + 1 < phases.size() &&
         t >= phase_start_ + phases[phase_index_].duration) {
    phase_start_ += phases[phase_index_].duration;
    ++phase_index_;
  }
  next_start = phase_index_ + 1 < phases.size()
                   ? phase_start_ + phases[phase_index_].duration
                   : std::numeric_limits<Time>::max();
  return phases[phase_index_];
}

const std::pair<Time, double>& ChannelRealization::BlockSampler::checkpoint_walk(
    Time t, Time& next_start) noexcept {
  // Identical selection to Cursor::distance_path_loss_db's checkpoint walk.
  const auto& checkpoints = ch_->distance_checkpoints_;
  if (checkpoints[checkpoint_index_].first > t) checkpoint_index_ = 0;
  while (checkpoint_index_ + 1 < checkpoints.size() &&
         checkpoints[checkpoint_index_ + 1].first <= t) {
    ++checkpoint_index_;
  }
  next_start = checkpoint_index_ + 1 < checkpoints.size()
                   ? checkpoints[checkpoint_index_ + 1].first
                   : std::numeric_limits<Time>::max();
  return checkpoints[checkpoint_index_];
}

void ChannelRealization::BlockSampler::sample_n(const Time* mid, std::size_t n,
                                                double* snr_out,
                                                bool* moving_out) {
  tau_.resize(n);
  sprog_.resize(n);
  pl_.resize(n);
  fade_.resize(n);
  shadow_off_.resize(n);

  // Pass 1: cut [0, n) into spans on which the mobility phase, both Doppler
  // clocks, and the distance checkpoint are all constant (their boundaries
  // all derive from scenario phase edges, so spans are long), then evaluate
  // each span's tau, shadowing progress, path loss, fading, and shadowing
  // over contiguous arrays.
  std::size_t i = 0;
  while (i < n) {
    const Time t = mid[i];
    Time phase_next = 0;
    const sim::MobilityPhase& phase = phase_walk(t, phase_next);
    const DopplerClock::Cursor::Span dop = doppler_.span_at(t);
    const DopplerClock::Cursor::Span sha = shadow_.span_at(t);
    Time span_end = std::min(phase_next,
                             std::min(dop.next_start, sha.next_start));
    const std::pair<Time, double>* checkpoint = nullptr;
    if (ch_->env_ == Environment::kVehicular) {
      Time cp_next = 0;
      checkpoint = &checkpoint_walk(t, cp_next);
      span_end = std::min(span_end, cp_next);
    }
    std::size_t j = i + 1;
    while (j < n && mid[j] < span_end) ++j;
    const std::size_t len = j - i;

    // Same per-element formula as DopplerClock::Cursor::tau_at, with the
    // segment hoisted: tau_start + hz * to_seconds(t - start).
    for (std::size_t k = i; k < j; ++k) {
      tau_[k] = dop.tau_start + dop.hz * to_seconds(mid[k] - dop.start);
    }
    for (std::size_t k = i; k < j; ++k) {
      sprog_[k] = sha.tau_start + sha.hz * to_seconds(mid[k] - sha.start);
    }
    const bool moving = sim::is_moving(phase.state);
    for (std::size_t k = i; k < j; ++k) moving_out[k] = moving;

    if (checkpoint != nullptr) {
      // Cursor::distance_path_loss_db's geometry, term for term (libm fmod/
      // hypot/log10 stay scalar calls on identical operands).
      const DriveByGeometry& geometry = ch_->geometry_;
      const double length = geometry.road_half_length_m;
      const double cycle = 4.0 * length;
      for (std::size_t k = i; k < j; ++k) {
        const double s = checkpoint->second +
                         phase.speed_mps * to_seconds(mid[k] - checkpoint->first);
        double m = std::fmod(s + geometry.start_position_m + length, cycle);
        if (m < 0.0) m += cycle;
        const double pos =
            (m < 2.0 * length) ? (-length + m) : (3.0 * length - m);
        const double dist = std::hypot(geometry.lateral_offset_m, pos);
        pl_[k] = 10.0 * geometry.path_loss_exponent *
                 std::log10(dist / geometry.lateral_offset_m);
      }
    } else {
      for (std::size_t k = i; k < j; ++k) pl_[k] = 0.0;
    }

    const FadingProcess::RicianMix& mix = moving ? mix_mobile_ : mix_static_;
    if (fast_) {
      ch_->fading_.gain_db_n_fast(tau_.data() + i, len, mix, fade_.data() + i,
                                  fade_scratch_);
    } else {
      ch_->fading_.gain_db_n(tau_.data() + i, len, mix, fade_.data() + i,
                             fade_scratch_);
    }
    ch_->shadowing_.offset_db_n(sprog_.data() + i, len, shadow_off_.data() + i);
    i = j;
  }

  // Pass 2: interference bursts (their boundaries are independent of the
  // phase structure) via Cursor::in_burst's monotone walk, then the SNR
  // composition in the exact scalar association order:
  // ((((mean + offset) - path_loss) + shadowing) + fade) - burst.
  const double base = ch_->profile_->mean_snr_db + ch_->snr_offset_db_;
  const double depth = ch_->profile_->burst_depth_db;
  const auto& bursts = ch_->bursts_;
  for (std::size_t k = 0; k < n; ++k) {
    const Time t = mid[k];
    if (burst_index_ > 0 && burst_index_ <= bursts.size() &&
        bursts[burst_index_ - 1].second > t) {
      burst_index_ = 0;
    }
    while (burst_index_ < bursts.size() && bursts[burst_index_].second <= t) {
      ++burst_index_;
    }
    const bool in_burst =
        burst_index_ < bursts.size() && bursts[burst_index_].first <= t;
    const double burst = in_burst ? depth : 0.0;
    snr_out[k] = base - pl_[k] + shadow_off_[k] + fade_[k] - burst;
  }
}

namespace {

void validate_trace_config(const TraceGeneratorConfig& config) {
  // Deterministic validation in every build mode: an assert would vanish
  // under NDEBUG and leave a zero slot_duration to divide by below.
  if (config.slot_duration <= 0) {
    throw std::invalid_argument(
        "generate_trace: slot_duration must be positive");
  }
  if (config.payload_bytes <= 0) {
    throw std::invalid_argument(
        "generate_trace: payload_bytes must be positive");
  }
}

}  // namespace

PacketFateTrace generate_trace_scalar(const TraceGeneratorConfig& config,
                                      std::vector<double>* true_snr_out) {
  validate_trace_config(config);
  ChannelRealization channel(config.env, config.scenario, config.seed,
                             config.geometry, config.snr_offset_db,
                             config.shadow_sigma_scale, config.shadow_clock);
  // Independent stream for fate draws so SNR(t) and the Bernoulli outcomes
  // are decorrelated.
  util::Rng fate_rng(config.seed ^ 0xF47E5EEDULL);

  // One monotone cursor walk per slot plus precomputed per-rate delivery
  // thresholds. Both reproduce the random-access arithmetic bit-for-bit
  // (golden-trace hashes pin this).
  ChannelRealization::Cursor cursor(channel);
  const DeliveryModel delivery(config.payload_bytes);

  // Tail policy (see header): a trailing partial slot is truncated.
  const Duration total = config.scenario.total_duration();
  const auto num_slots =
      static_cast<std::size_t>(total / config.slot_duration);
  PacketFateTrace trace(config.slot_duration);
  trace.reserve(num_slots);
  for (std::size_t i = 0; i < num_slots; ++i) {
    const Time mid = static_cast<Time>(i) * config.slot_duration +
                     config.slot_duration / 2;
    TraceSlot slot;
    const double true_snr = cursor.snr_db_at(mid);
    slot.snr_db = static_cast<float>(
        true_snr + fate_rng.normal(0.0, config.snr_noise_db));
    slot.moving = cursor.moving_at(mid);
    for (int r = 0; r < mac::kNumRates; ++r) {
      slot.delivered[static_cast<std::size_t>(r)] =
          fate_rng.bernoulli(delivery.probability(true_snr, r));
    }
    trace.push_back(slot);
    if (true_snr_out != nullptr) true_snr_out->push_back(true_snr);
  }
  return trace;
}

PacketFateTrace generate_trace_block(const TraceGeneratorConfig& config,
                                     std::size_t block_slots,
                                     std::vector<double>* true_snr_out) {
  validate_trace_config(config);
  ChannelRealization channel(config.env, config.scenario, config.seed,
                             config.geometry, config.snr_offset_db,
                             config.shadow_sigma_scale, config.shadow_clock);
  util::Rng fate_rng(config.seed ^ 0xF47E5EEDULL);
  ChannelRealization::BlockSampler sampler(channel, config.fast_trace);
  const DeliveryModel delivery(config.payload_bytes);

  const Duration total = config.scenario.total_duration();
  const auto num_slots =
      static_cast<std::size_t>(total / config.slot_duration);
  PacketFateTrace trace(config.slot_duration);
  trace.reserve(num_slots);

  const std::size_t block = std::max<std::size_t>(1, block_slots);
  std::vector<Time> mid(block);
  std::vector<double> snr(block);
  const std::unique_ptr<bool[]> moving(new bool[block]);
  // Rate-major per-rate delivery probabilities for the block.
  std::vector<double> probs(static_cast<std::size_t>(mac::kNumRates) * block);
  std::vector<double> scratch(block);

  for (std::size_t start = 0; start < num_slots; start += block) {
    const std::size_t len = std::min(block, num_slots - start);
    for (std::size_t k = 0; k < len; ++k) {
      mid[k] = static_cast<Time>(start + k) * config.slot_duration +
               config.slot_duration / 2;
    }
    sampler.sample_n(mid.data(), len, snr.data(), moving.get());
    for (int r = 0; r < mac::kNumRates; ++r) {
      delivery.probabilities_n(snr.data(), len, r,
                               probs.data() + static_cast<std::size_t>(r) *
                                                  block,
                               scratch.data());
    }
    // Scalar tail: the fate RNG is a sequential stream, so draws stay in
    // the exact scalar order — one normal then kNumRates Bernoullis per
    // slot — against the precomputed probability arrays.
    for (std::size_t k = 0; k < len; ++k) {
      TraceSlot slot;
      slot.snr_db = static_cast<float>(
          snr[k] + fate_rng.normal(0.0, config.snr_noise_db));
      slot.moving = moving[k];
      for (int r = 0; r < mac::kNumRates; ++r) {
        slot.delivered[static_cast<std::size_t>(r)] = fate_rng.bernoulli(
            probs[static_cast<std::size_t>(r) * block + k]);
      }
      trace.push_back(slot);
      if (true_snr_out != nullptr) true_snr_out->push_back(snr[k]);
    }
  }
  return trace;
}

PacketFateTrace generate_trace(const TraceGeneratorConfig& config) {
  return generate_trace_block(config, kDefaultTraceBlockSlots);
}

}  // namespace sh::channel
