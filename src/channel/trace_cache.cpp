#include "channel/trace_cache.h"

#include <cstring>
#include <utility>

namespace sh::channel {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

void append_double(std::string& out, double v) {
  // Raw IEEE-754 bits: the key must distinguish every value the generator
  // could see (including -0.0 vs 0.0 — they behave identically downstream,
  // but a false split only costs a duplicate entry, never correctness).
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

}  // namespace

std::string trace_config_key(const TraceGeneratorConfig& config) {
  std::string key;
  key.reserve(160);
  key.push_back(static_cast<char>(config.env));
  // Fast-trace output differs bit-wise from the exact kernel, so the two
  // modes must never share a cache entry.
  key.push_back(config.fast_trace ? '\1' : '\0');
  append_u64(key, config.seed);
  append_i64(key, config.slot_duration);
  append_i64(key, config.payload_bytes);
  append_double(key, config.snr_offset_db);
  append_double(key, config.snr_noise_db);
  append_double(key, config.shadow_sigma_scale);
  append_double(key, config.shadow_clock.static_hz);
  append_double(key, config.shadow_clock.walking_hz);
  append_double(key, config.shadow_clock.vehicle_hz_per_mps);
  append_double(key, config.geometry.lateral_offset_m);
  append_double(key, config.geometry.road_half_length_m);
  append_double(key, config.geometry.path_loss_exponent);
  append_double(key, config.geometry.start_position_m);
  const auto& phases = config.scenario.phases();
  append_u64(key, phases.size());
  for (const auto& phase : phases) {
    append_i64(key, phase.duration);
    key.push_back(static_cast<char>(phase.state));
    append_double(key, phase.speed_mps);
  }
  return key;
}

std::uint64_t trace_config_hash(const TraceGeneratorConfig& config) {
  // FNV-1a 64: stable across platforms and runs, good enough to identify a
  // benchmark workload (collisions only weaken the shbench comparability
  // check, never experiment results — the cache keys on the full string).
  const std::string key = trace_config_key(config);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TraceCache::TraceCache(std::size_t capacity) : capacity_(capacity) {}

void TraceCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
}

std::shared_ptr<const PacketFateTrace> TraceCache::get_or_generate(
    const TraceGeneratorConfig& config) {
  const std::string key = trace_config_key(config);
  std::promise<TracePtr> promise;
  std::shared_future<TracePtr> future;
  bool generate = false;
  bool bypass = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) {  // Caching disabled: plain generation, no stats.
      bypass = true;
    } else {
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        future = it->second.future;
      } else {
        ++stats_.misses;
        generate = true;
        future = promise.get_future().share();
        order_.push_back(key);
        entries_.emplace(key, Entry{future, std::prev(order_.end())});
        evict_to_capacity_locked();
      }
    }
  }
  if (bypass) {
    return std::make_shared<const PacketFateTrace>(generate_trace(config));
  }
  if (!generate) return future.get();  // Waits if still in flight.

  try {
    auto trace =
        std::make_shared<const PacketFateTrace>(generate_trace(config));
    promise.set_value(trace);
    return trace;
  } catch (...) {
    promise.set_exception(std::current_exception());
    // Drop the poisoned entry so a later, fixed caller can retry; waiters
    // already holding the future still see the exception.
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      order_.erase(it->second.order_it);
      entries_.erase(it);
    }
    throw;
  }
}

std::size_t TraceCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceCache::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  if (capacity_ > 0) evict_to_capacity_locked();
  // capacity 0 bypasses the map entirely; drop what is resident.
  if (capacity_ == 0) {
    entries_.clear();
    order_.clear();
  }
}

std::size_t TraceCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TraceCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
  stats_ = Stats{};
}

TraceCache::Stats TraceCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TraceCache& global_trace_cache() {
  // Process-wide by design: the cache is mutex-guarded and keyed by the
  // full generator config, so shards can only ever observe the same
  // bit-identical trace a solo run would generate.
  static TraceCache cache;  // shlint:allow(T1)
  return cache;
}

std::shared_ptr<const PacketFateTrace> generate_trace_cached(
    const TraceGeneratorConfig& config) {
  return global_trace_cache().get_or_generate(config);
}

}  // namespace sh::channel
