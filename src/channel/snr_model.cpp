#include "channel/snr_model.h"

#include <cassert>
#include <cmath>

namespace sh::channel {

double delivery_probability(double snr_db, mac::RateIndex rate,
                            int payload_bytes, const SnrModelParams& params) {
  assert(mac::valid_rate(rate));
  assert(payload_bytes > 0);
  // A frame twice as long has twice the symbols exposed to errors; in the
  // logistic-threshold picture that shifts the 50% point up by a small,
  // logarithmic amount (~0.9 dB per doubling).
  const double length_shift_db =
      0.9 * std::log2(static_cast<double>(payload_bytes) /
                      static_cast<double>(params.reference_bytes));
  const double threshold = mac::rate(rate).min_snr_db + length_shift_db;
  const double x = (snr_db - threshold) / params.transition_width_db;
  return 1.0 / (1.0 + std::exp(-x));
}

DeliveryModel::DeliveryModel(int payload_bytes, SnrModelParams params)
    : transition_width_db_(params.transition_width_db) {
  assert(payload_bytes > 0);
  // Same expressions as delivery_probability, so each threshold is the very
  // double that function would have computed.
  const double length_shift_db =
      0.9 * std::log2(static_cast<double>(payload_bytes) /
                      static_cast<double>(params.reference_bytes));
  for (mac::RateIndex r = 0; r < mac::kNumRates; ++r) {
    threshold_db_[static_cast<std::size_t>(r)] =
        mac::rate(r).min_snr_db + length_shift_db;
  }
}

mac::RateIndex best_rate_for_snr(double snr_db, double target,
                                 int payload_bytes,
                                 const SnrModelParams& params) {
  for (mac::RateIndex r = mac::fastest_rate(); r > mac::slowest_rate(); --r) {
    if (delivery_probability(snr_db, r, payload_bytes, params) >= target)
      return r;
  }
  return mac::slowest_rate();
}

}  // namespace sh::channel
