#include "channel/snr_model.h"

#include <cassert>
#include <cmath>

namespace sh::channel {

double delivery_probability(double snr_db, mac::RateIndex rate,
                            int payload_bytes, const SnrModelParams& params) {
  assert(mac::valid_rate(rate));
  assert(payload_bytes > 0);
  // A frame twice as long has twice the symbols exposed to errors; in the
  // logistic-threshold picture that shifts the 50% point up by a small,
  // logarithmic amount (~0.9 dB per doubling).
  const double length_shift_db =
      0.9 * std::log2(static_cast<double>(payload_bytes) /
                      static_cast<double>(params.reference_bytes));
  const double threshold = mac::rate(rate).min_snr_db + length_shift_db;
  const double x = (snr_db - threshold) / params.transition_width_db;
  return 1.0 / (1.0 + util::detmath::dexp(-x));
}

DeliveryModel::DeliveryModel(int payload_bytes, SnrModelParams params)
    : transition_width_db_(params.transition_width_db) {
  assert(payload_bytes > 0);
  // Same expressions as delivery_probability, so each threshold is the very
  // double that function would have computed.
  const double length_shift_db =
      0.9 * std::log2(static_cast<double>(payload_bytes) /
                      static_cast<double>(params.reference_bytes));
  for (mac::RateIndex r = 0; r < mac::kNumRates; ++r) {
    threshold_db_[static_cast<std::size_t>(r)] =
        mac::rate(r).min_snr_db + length_shift_db;
  }
}

void DeliveryModel::probabilities_n(const double* snr_db, std::size_t n,
                                    mac::RateIndex rate, double* out,
                                    double* scratch) const noexcept {
  // Same arithmetic as probability(), element by element: the subtraction,
  // division, and negation are exact-shape identical, dexp's batch form is
  // bit-identical to its scalar form by the detmath contract, and the final
  // division matches.
  const double threshold = threshold_db_[static_cast<std::size_t>(rate)];
  for (std::size_t k = 0; k < n; ++k) {
    scratch[k] = -((snr_db[k] - threshold) / transition_width_db_);
  }
  util::detmath::exp_n(scratch, n, out);
  for (std::size_t k = 0; k < n; ++k) out[k] = 1.0 / (1.0 + out[k]);
}

mac::RateIndex best_rate_for_snr(double snr_db, double target,
                                 int payload_bytes,
                                 const SnrModelParams& params) {
  // The frame-length shift is rate-independent; hoist it out of the rate
  // loop instead of letting delivery_probability recompute the log2 per
  // rate. Each per-rate probability is still the very double that function
  // returns (same shift value, same logistic arithmetic) — pinned by
  // SnrModelTest.BestRateMatchesPerRateProbabilities.
  const double length_shift_db =
      0.9 * std::log2(static_cast<double>(payload_bytes) /
                      static_cast<double>(params.reference_bytes));
  for (mac::RateIndex r = mac::fastest_rate(); r > mac::slowest_rate(); --r) {
    const double threshold = mac::rate(r).min_snr_db + length_shift_db;
    const double x = (snr_db - threshold) / params.transition_width_db;
    const double p = 1.0 / (1.0 + util::detmath::dexp(-x));
    if (p >= target) return r;
  }
  return mac::slowest_rate();
}

}  // namespace sh::channel
