// Synthetic channel realizations and packet-fate trace generation.
//
// ChannelRealization composes path loss (vehicular drive-by geometry),
// shadowing, and Doppler-scheduled small-scale fading into a deterministic,
// randomly accessible SNR(t) for one (environment, mobility scenario, seed)
// triple. The trace generator samples it every 5 ms and draws per-rate frame
// fates — the synthetic stand-in for the paper's measurement campaign.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/environment.h"
#include "channel/fading.h"
#include "channel/snr_model.h"
#include "channel/trace.h"
#include "sim/mobility.h"
#include "util/rng.h"

namespace sh::channel {

/// Drive-by geometry for vehicular scenarios: the receiver shuttles along a
/// straight road past a stationary roadside sender (paper Fig 3-4).
struct DriveByGeometry {
  double lateral_offset_m = 15.0;  ///< Closest approach distance.
  double road_half_length_m = 250.0;
  double path_loss_exponent = 2.7;
  /// Along-road position at t = 0 (0 = abreast of the sender). Set to
  /// -speed * t_pass so a short trace captures an actual pass.
  double start_position_m = -250.0;
};

class ChannelRealization {
 public:
  ChannelRealization(Environment env, sim::MobilityScenario scenario,
                     std::uint64_t seed, DriveByGeometry geometry = {},
                     double snr_offset_db = 0.0,
                     double shadow_sigma_scale = 1.0,
                     DopplerClock::Config shadow_clock = {0.04, 1.6, 0.9});

  /// Instantaneous channel SNR (dB) at time `t`: mean SNR + distance path
  /// loss (vehicular only) + shadowing + small-scale fading.
  double snr_db_at(Time t) const;

  /// Ground-truth motion at `t` (from the scenario).
  bool moving_at(Time t) const { return scenario_.moving_at(t); }

  /// Delivery probability of a frame sent at time `t`.
  double delivery_probability_at(Time t, mac::RateIndex rate,
                                 int payload_bytes = 1000) const;

  /// Samples one frame fate at time `t` using the supplied RNG.
  bool sample_delivery(Time t, mac::RateIndex rate, util::Rng& rng,
                       int payload_bytes = 1000) const;

  const sim::MobilityScenario& scenario() const noexcept { return scenario_; }
  const EnvironmentProfile& profile() const noexcept { return *profile_; }
  Duration duration() const noexcept { return scenario_.total_duration(); }

  /// Monotone sampling cursor over one realization. Sequential generation
  /// queries SNR once per slot with non-decreasing times; the cursor walks
  /// every piecewise structure behind snr_db_at — mobility phases, Doppler
  /// and shadowing segments, interference bursts, distance checkpoints —
  /// incrementally (amortized O(1) per query) instead of re-locating each
  /// via a scan or binary search per call.
  ///
  /// Invariants (see DESIGN.md "SlotCursor"):
  ///  * bit-identical to the random-access methods: every formula is the
  ///    same arithmetic on the same segment, so snr_db_at/moving_at agree
  ///    with ChannelRealization's own methods for every t;
  ///  * monotone queries are the fast path only — a query earlier than its
  ///    predecessor resets the affected cursor to the first segment and
  ///    re-walks (the random-access fallback), never returns stale state.
  class Cursor {
   public:
    explicit Cursor(const ChannelRealization& channel) noexcept;

    double snr_db_at(Time t) noexcept;
    bool moving_at(Time t) noexcept;

   private:
    const sim::MobilityPhase& phase_at(Time t) noexcept;
    bool in_burst(Time t) noexcept;
    double distance_path_loss_db(Time t) noexcept;

    const ChannelRealization* ch_;
    DopplerClock::Cursor doppler_;
    DopplerClock::Cursor shadow_;
    /// Rician weights for the two motion states, hoisted out of gain_db.
    FadingProcess::RicianMix mix_static_;
    FadingProcess::RicianMix mix_mobile_;
    std::size_t phase_index_ = 0;
    Time phase_start_ = 0;
    std::size_t burst_index_ = 0;
    std::size_t checkpoint_index_ = 0;
  };

  /// Structure-of-arrays block sampler: the batched counterpart of Cursor.
  /// sample_n fills true SNR and motion for a whole run of non-decreasing
  /// slot midpoints at once — it walks the piecewise structures (mobility
  /// phases, Doppler/shadow segments, distance checkpoints) to cut the run
  /// into spans on which all of them are constant, evaluates each span over
  /// contiguous arrays via the detmath batch kernels, then applies the
  /// interference bursts with a per-slot monotone walk.
  ///
  /// Exact mode (fast = false) is bit-identical to Cursor::snr_db_at /
  /// moving_at for every midpoint — same segment-selection rules, same
  /// arithmetic on the same doubles (tests/trace_kernel_test.cpp pins this
  /// differentially and property-wise). Fast mode replaces the per-slot
  /// fading cosines with block-seeded phase rotators (see
  /// FadingProcess::gain_db_n_fast): statistically equivalent, never fed to
  /// golden-pinned artifacts.
  class BlockSampler {
   public:
    explicit BlockSampler(const ChannelRealization& channel,
                          bool fast = false) noexcept;

    /// Preconditions: mid[0..n) non-decreasing (and non-decreasing across
    /// calls for the monotone fast path; a backwards step re-walks like
    /// Cursor does).
    void sample_n(const Time* mid, std::size_t n, double* snr_out,
                  bool* moving_out);

   private:
    const sim::MobilityPhase& phase_walk(Time t, Time& next_start) noexcept;
    const std::pair<Time, double>& checkpoint_walk(Time t,
                                                   Time& next_start) noexcept;

    const ChannelRealization* ch_;
    bool fast_;
    DopplerClock::Cursor doppler_;
    DopplerClock::Cursor shadow_;
    FadingProcess::RicianMix mix_static_;
    FadingProcess::RicianMix mix_mobile_;
    std::size_t phase_index_ = 0;
    Time phase_start_ = 0;
    std::size_t burst_index_ = 0;
    std::size_t checkpoint_index_ = 0;
    /// Span-sliced SoA buffers (sized per call, reused across calls).
    std::vector<double> tau_, sprog_, pl_, fade_, shadow_off_;
    FadingProcess::BlockScratch fade_scratch_;
  };

 private:
  double distance_path_loss_db(Time t) const;
  bool in_burst(Time t) const;

  const EnvironmentProfile* profile_;
  sim::MobilityScenario scenario_;
  Environment env_;
  DriveByGeometry geometry_;
  double snr_offset_db_;
  util::Rng rng_;  ///< Construction-time entropy for the sub-processes.
  FadingProcess fading_;
  DopplerClock doppler_;
  DopplerClock shadow_clock_;  ///< Motion-scaled progress for shadowing.
  ShadowingProcess shadowing_;
  /// Vehicular only: (phase start time, cumulative metres travelled).
  std::vector<std::pair<Time, double>> distance_checkpoints_;
  /// Interference bursts, precomputed over the scenario: [start, end).
  std::vector<std::pair<Time, Time>> bursts_;
};

struct TraceGeneratorConfig {
  Environment env = Environment::kOffice;
  sim::MobilityScenario scenario = sim::MobilityScenario::all_static(20 * kSecond);
  std::uint64_t seed = 1;
  Duration slot_duration = 5 * kMillisecond;
  int payload_bytes = 1000;
  /// Per-trace SNR offset (dB): models different sender/receiver placements
  /// between repetitions of the same experiment.
  double snr_offset_db = 0.0;
  /// Measurement noise on the *recorded* per-slot SNR (what an SNR-based
  /// protocol observes via RTS/CTS or overheard frames). Frame fates are
  /// drawn from the true SNR; the recorded value is the noisy observation —
  /// real receivers report quantized, interference-polluted RSSI, which is
  /// precisely why trained SNR protocols underperform frame-based ones.
  double snr_noise_db = 1.5;
  /// Scales the environment's shadowing sigma for this trace. The topology
  /// experiments use a marginal long link whose large-scale swings are
  /// stronger than the short-range rate-adaptation setup (paper Fig 4-1's
  /// 20%+ per-second delivery jumps).
  double shadow_sigma_scale = 1.0;
  /// Shadowing progress rates per motion state (how fast the device sweeps
  /// through large-scale obstructions). The default matches the Chapter 3
  /// rate-adaptation setting; the Chapter 4 long link uses a slower sweep
  /// (body shadowing on a longer path varies over many seconds).
  DopplerClock::Config shadow_clock{0.04, 1.6, 0.9};
  DriveByGeometry geometry{};
  /// Opt-in approximate fading evaluation (CLI: --fast-trace). The fading
  /// sinusoids advance by per-block phase rotation instead of a fresh
  /// cosine per slot — statistically equivalent to the exact kernel
  /// (pinned by the fast-trace tier in tests/trace_kernel_test.cpp) but
  /// not bit-identical, so fast traces are keyed separately by the trace
  /// cache and MUST NOT feed golden-pinned artifacts.
  bool fast_trace = false;
};

/// Generates a packet-fate trace by sampling a fresh channel realization.
///
/// Tail policy: the trace covers exactly floor(total_duration /
/// slot_duration) complete slots. A trailing partial slot — when the
/// scenario's total duration is not a multiple of the slot length — is
/// deterministically truncated, never emitted as a short slot; callers that
/// need the tail must extend the scenario to a slot multiple.
///
/// Validation: throws std::invalid_argument if slot_duration or
/// payload_bytes is not positive (checked in every build mode — release
/// builds must not silently divide by zero where a debug build asserts).
PacketFateTrace generate_trace(const TraceGeneratorConfig& config);

/// Reference implementation: the PR 4 scalar cursor walk, one slot at a
/// time. generate_trace (the block kernel) is bit-identical to this for
/// every config with fast_trace == false; the differential `kernel` test
/// tier holds the two against each other. If `true_snr_out` is non-null it
/// receives the per-slot true SNR doubles (before observation noise), the
/// quantity the differential tests compare at full double precision.
PacketFateTrace generate_trace_scalar(const TraceGeneratorConfig& config,
                                      std::vector<double>* true_snr_out =
                                          nullptr);

/// Block-kernel implementation with an explicit block size (slots per
/// batch). generate_trace uses kDefaultTraceBlockSlots; tests sweep odd
/// sizes and off-multiple trace lengths. Any block_slots value produces
/// identical output — blocking changes evaluation grouping, never results.
PacketFateTrace generate_trace_block(const TraceGeneratorConfig& config,
                                     std::size_t block_slots,
                                     std::vector<double>* true_snr_out =
                                         nullptr);

/// Default slots-per-block of the block kernel: big enough to amortize the
/// batch kernels, small enough to stay L1-resident (~14 doubles per slot).
inline constexpr std::size_t kDefaultTraceBlockSlots = 256;

}  // namespace sh::channel
