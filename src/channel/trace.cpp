#include "channel/trace.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace sh::channel {

std::size_t PacketFateTrace::slot_index(Time t) const noexcept {
  if (slots_.empty() || t <= 0) return 0;
  const auto idx = static_cast<std::size_t>(t / slot_duration_);
  return idx < slots_.size() ? idx : slots_.size() - 1;
}

bool PacketFateTrace::delivered(Time t, mac::RateIndex rate) const {
  assert(mac::valid_rate(rate));
  return slots_.at(slot_index(t)).delivered[static_cast<std::size_t>(rate)];
}

double PacketFateTrace::snr_db(Time t) const {
  return slots_.at(slot_index(t)).snr_db;
}

bool PacketFateTrace::moving(Time t) const {
  return slots_.at(slot_index(t)).moving;
}

double PacketFateTrace::delivery_ratio(mac::RateIndex rate) const {
  assert(mac::valid_rate(rate));
  if (slots_.empty()) return 0.0;
  std::size_t delivered_count = 0;
  for (const auto& s : slots_)
    if (s.delivered[static_cast<std::size_t>(rate)]) ++delivered_count;
  return static_cast<double>(delivered_count) /
         static_cast<double>(slots_.size());
}

void PacketFateTrace::save(std::ostream& os) const {
  // Full float precision so save/load round-trips bit-exactly.
  os.precision(9);
  os << "sensorhints-trace v1\n";
  os << slot_duration_ << ' ' << slots_.size() << '\n';
  for (const auto& s : slots_) {
    unsigned mask = 0;
    for (int r = 0; r < mac::kNumRates; ++r)
      if (s.delivered[static_cast<std::size_t>(r)]) mask |= 1U << r;
    os << mask << ' ' << s.snr_db << ' ' << (s.moving ? 1 : 0) << '\n';
  }
}

std::optional<PacketFateTrace> PacketFateTrace::load(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != "sensorhints-trace v1") return std::nullopt;
  Duration slot_duration = 0;
  std::size_t count = 0;
  if (!(is >> slot_duration >> count) || slot_duration <= 0) return std::nullopt;
  PacketFateTrace trace(slot_duration);
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    unsigned mask = 0;
    float snr = 0.0F;
    int moving = 0;
    if (!(is >> mask >> snr >> moving)) return std::nullopt;
    TraceSlot slot;
    for (int r = 0; r < mac::kNumRates; ++r)
      slot.delivered[static_cast<std::size_t>(r)] = (mask >> r) & 1U;
    slot.snr_db = snr;
    slot.moving = moving != 0;
    trace.push_back(slot);
  }
  return trace;
}

}  // namespace sh::channel
