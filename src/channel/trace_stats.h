// Trace statistics used by the measurement figures: loss autocorrelation
// (Fig 3-1) and bucketed delivery-ratio time series (Fig 4-1).
#pragma once

#include <vector>

#include "channel/trace.h"

namespace sh::channel {

struct LossCorrelation {
  /// cond_loss[k-1] = P(packet i+k lost | packet i lost), k = 1..max_lag.
  std::vector<double> conditional_loss;
  double unconditional_loss = 0.0;
};

/// Computes loss autocorrelation from a sequence of per-packet fates
/// (true = delivered). Lags with no conditioning events report the
/// unconditional loss.
LossCorrelation loss_correlation(const std::vector<bool>& delivered,
                                 int max_lag);

struct DeliveryPoint {
  double time_s;
  double delivery_ratio;
  bool moving;
};

/// Per-bucket delivery ratio at one rate over a trace (bucket defaults to the
/// paper's 1 second). `moving` is the majority ground-truth motion flag of
/// the bucket.
std::vector<DeliveryPoint> delivery_series(const PacketFateTrace& trace,
                                           mac::RateIndex rate,
                                           Duration bucket = kSecond);

}  // namespace sh::channel
