// Heading estimation by compass + gyro complementary fusion (§2.2.2).
//
// The gyro integrates precisely over short horizons but drifts; the compass
// is drift-free but noisy and occasionally grossly disturbed indoors. The
// complementary filter integrates gyro rates and pulls slowly towards the
// compass, rejecting compass samples that disagree wildly with the current
// estimate (a disturbance, not information).
#pragma once

#include "sensors/compass.h"
#include "sensors/gyroscope.h"

namespace sh::sensors {

class HeadingEstimator {
 public:
  struct Params {
    double compass_gain = 0.02;        ///< Pull-in per compass sample.
    double outlier_reject_deg = 60.0;  ///< Compass samples further than this
                                       ///< from the estimate correct slower.
    double outlier_gain = 0.002;
  };

  HeadingEstimator() : HeadingEstimator(Params{}) {}
  explicit HeadingEstimator(Params params);

  /// Seeds the estimate (e.g. from the first compass sample or GPS heading).
  void initialize(double heading_deg);
  bool initialized() const noexcept { return initialized_; }

  /// Integrates one gyro reading over its sampling interval.
  void update_gyro(const GyroReading& reading, Duration interval);
  /// Applies one compass correction.
  void update_compass(const CompassReading& reading);

  /// Current heading estimate in [0, 360). Requires initialize() or at least
  /// one compass update first (the first compass sample auto-initializes).
  double heading_deg() const noexcept { return heading_deg_; }

 private:
  Params params_;
  double heading_deg_ = 0.0;
  bool initialized_ = false;
};

}  // namespace sh::sensors
