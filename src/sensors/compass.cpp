#include "sensors/compass.h"

#include "core/hints.h"

namespace sh::sensors {

CompassSim::Params CompassSim::indoor_params() {
  Params p;
  p.noise_deg = 10.0;
  p.disturbance_rate_hz = 0.25;
  p.disturbance_magnitude_deg = 70.0;
  p.disturbance_duration = 6 * kSecond;
  return p;
}

CompassSim::CompassSim(TruthTrack truth, util::Rng rng, Params params)
    : truth_(std::move(truth)), rng_(rng), params_(params) {}

CompassReading CompassSim::next() {
  const Time t = now_;
  now_ += params_.interval;

  if (t >= disturbance_until_) {
    const double p_start =
        params_.disturbance_rate_hz * to_seconds(params_.interval);
    if (rng_.bernoulli(p_start)) {
      disturbance_offset_ =
          rng_.normal(0.0, params_.disturbance_magnitude_deg);
      disturbance_until_ = t + params_.disturbance_duration;
    } else {
      disturbance_offset_ = 0.0;
    }
  }

  const KinematicSample s = truth_(t);
  CompassReading reading;
  reading.timestamp = t;
  reading.heading_deg = core::normalize_heading(
      s.heading_deg + disturbance_offset_ + rng_.normal(0.0, params_.noise_deg));
  return reading;
}

}  // namespace sh::sensors
