// The paper's movement-hint algorithm (§2.2.1), verbatim:
//
//   For each accelerometer report t, average the force values of reports
//   [t-4, t] and [t-9, t-5] per axis; the jerk J_t is the squared distance
//   between the two mean vectors. The movement hint H_t turns on as soon as
//   J_t exceeds the threshold (3, in the paper's custom units) and turns off
//   only after a full window (50 reports = 100 ms) passes with every jerk
//   below the threshold.
//
// The thresholds are calibrated once per accelerometer type, not per use —
// they are exposed as Params so the ablation bench can sweep them.
#pragma once

#include <cstdint>
#include <deque>

#include "sensors/accelerometer.h"

namespace sh::sensors {

class MovementDetector {
 public:
  struct Params {
    double jerk_threshold = 3.0;
    int hold_window_reports = 50;  ///< Reports of quiet before H drops.
    int mean_length = 5;           ///< Reports per averaging window.
  };

  MovementDetector() : MovementDetector(Params{}) {}
  explicit MovementDetector(Params params);

  /// Feeds one report; returns the updated hint value. Until two full
  /// averaging windows are buffered the hint stays at its initial 0.
  bool update(const AccelReport& report);

  /// Most recently computed hint value (the "movement hint service" query).
  bool moving() const noexcept { return hint_; }

  /// Jerk value computed for the last update (0 before warm-up). Exposed for
  /// the Fig 2-2 reproduction and for calibration tests.
  double last_jerk() const noexcept { return last_jerk_; }

  const Params& params() const noexcept { return params_; }

  void reset();

 private:
  Params params_;
  std::deque<AccelReport> window_;  ///< Last 2 * mean_length reports.
  bool hint_ = false;
  double last_jerk_ = 0.0;
  int reports_since_high_jerk_ = 0;
};

}  // namespace sh::sensors
