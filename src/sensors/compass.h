// Digital compass (magnetometer) simulation: frequent heading readings with
// Gaussian noise plus intermittent magnetic disturbances — severe indoors,
// mild outdoors — the failure mode that motivates gyro fusion (§2.2.2).
#pragma once

#include "sensors/truth.h"
#include "util/rng.h"

namespace sh::sensors {

struct CompassReading {
  Time timestamp = 0;
  double heading_deg = 0.0;
};

class CompassSim {
 public:
  struct Params {
    Duration interval = 50 * kMillisecond;  ///< 20 Hz.
    double noise_deg = 4.0;
    /// Magnetic disturbance: occasionally the reported heading acquires a
    /// large slowly-decaying offset (steel furniture, wiring, vehicles).
    double disturbance_rate_hz = 0.05;
    double disturbance_magnitude_deg = 45.0;
    Duration disturbance_duration = 4 * kSecond;
  };

  /// Indoor preset: noisier, frequently disturbed.
  static Params indoor_params();

  CompassSim(TruthTrack truth, util::Rng rng)
      : CompassSim(std::move(truth), rng, Params{}) {}
  CompassSim(TruthTrack truth, util::Rng rng, Params params);

  CompassReading next();

  Time now() const noexcept { return now_; }

 private:
  TruthTrack truth_;
  util::Rng rng_;
  Params params_;
  Time now_ = 0;
  Time disturbance_until_ = -1;
  double disturbance_offset_ = 0.0;
};

}  // namespace sh::sensors
