#include "sensors/hint_services.h"

#include "core/hints.h"

namespace sh::sensors {

MovementHintService::MovementHintService(sim::EventLoop& loop,
                                         core::HintBus& bus, sim::NodeId self,
                                         AccelerometerSim accel,
                                         MovementDetector::Params params)
    : loop_(loop),
      bus_(bus),
      self_(self),
      accel_(std::move(accel)),
      detector_(params) {}

void MovementHintService::start() {
  loop_.schedule_after(accel_.params().report_interval, [this] { tick(); });
}

void MovementHintService::tick() {
  const bool moving = detector_.update(accel_.next());
  if (!published_any_ || moving != last_published_) {
    bus_.publish(core::Hint::movement(moving, loop_.now(), self_));
    last_published_ = moving;
    published_any_ = true;
  }
  loop_.schedule_after(accel_.params().report_interval, [this] { tick(); });
}

HeadingHintService::HeadingHintService(sim::EventLoop& loop,
                                       core::HintBus& bus, sim::NodeId self,
                                       CompassSim compass, GyroscopeSim gyro,
                                       Params params)
    : loop_(loop),
      bus_(bus),
      self_(self),
      compass_(std::move(compass)),
      gyro_(std::move(gyro)),
      estimator_(params.estimator),
      params_(params) {}

void HeadingHintService::start() {
  loop_.schedule_after(gyro_.interval(), [this] { gyro_tick(); });
  loop_.schedule_after(50 * kMillisecond, [this] { compass_tick(); });
}

void HeadingHintService::gyro_tick() {
  estimator_.update_gyro(gyro_.next(), gyro_.interval());
  maybe_publish();
  loop_.schedule_after(gyro_.interval(), [this] { gyro_tick(); });
}

void HeadingHintService::compass_tick() {
  estimator_.update_compass(compass_.next());
  maybe_publish();
  loop_.schedule_after(50 * kMillisecond, [this] { compass_tick(); });
}

void HeadingHintService::maybe_publish() {
  if (!estimator_.initialized()) return;
  const double heading = estimator_.heading_deg();
  if (published_any_ &&
      core::heading_difference(heading, last_published_deg_) <
          params_.publish_delta_deg) {
    return;
  }
  bus_.publish(core::Hint::heading(heading, loop_.now(), self_));
  last_published_deg_ = heading;
  published_any_ = true;
}

}  // namespace sh::sensors
