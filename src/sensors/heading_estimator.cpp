#include "sensors/heading_estimator.h"

#include <cmath>

#include "core/hints.h"

namespace sh::sensors {
namespace {

double signed_delta(double target, double current) {
  double d = std::fmod(target - current, 360.0);
  if (d > 180.0) d -= 360.0;
  if (d <= -180.0) d += 360.0;
  return d;
}

}  // namespace

HeadingEstimator::HeadingEstimator(Params params) : params_(params) {}

void HeadingEstimator::initialize(double heading_deg) {
  heading_deg_ = core::normalize_heading(heading_deg);
  initialized_ = true;
}

void HeadingEstimator::update_gyro(const GyroReading& reading,
                                   Duration interval) {
  if (!initialized_) return;
  heading_deg_ = core::normalize_heading(
      heading_deg_ + reading.rate_dps * to_seconds(interval));
}

void HeadingEstimator::update_compass(const CompassReading& reading) {
  if (!initialized_) {
    initialize(reading.heading_deg);
    return;
  }
  const double delta = signed_delta(reading.heading_deg, heading_deg_);
  const double gain = std::fabs(delta) > params_.outlier_reject_deg
                          ? params_.outlier_gain
                          : params_.compass_gain;
  heading_deg_ = core::normalize_heading(heading_deg_ + gain * delta);
}

}  // namespace sh::sensors
