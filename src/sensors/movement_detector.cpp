#include "sensors/movement_detector.h"

#include <cassert>

namespace sh::sensors {

MovementDetector::MovementDetector(Params params) : params_(params) {
  assert(params_.jerk_threshold > 0.0);
  assert(params_.hold_window_reports > 0);
  assert(params_.mean_length > 0);
}

bool MovementDetector::update(const AccelReport& report) {
  const auto needed = static_cast<std::size_t>(2 * params_.mean_length);
  window_.push_back(report);
  if (window_.size() > needed) window_.pop_front();
  if (window_.size() < needed) return hint_;

  // Older half [0, mean_length) vs newer half [mean_length, 2*mean_length).
  double ox = 0.0, oy = 0.0, oz = 0.0, nx = 0.0, ny = 0.0, nz = 0.0;
  for (int i = 0; i < params_.mean_length; ++i) {
    const auto& older = window_[static_cast<std::size_t>(i)];
    ox += older.x;
    oy += older.y;
    oz += older.z;
    const auto& newer =
        window_[static_cast<std::size_t>(i + params_.mean_length)];
    nx += newer.x;
    ny += newer.y;
    nz += newer.z;
  }
  const double inv = 1.0 / static_cast<double>(params_.mean_length);
  const double dx = (nx - ox) * inv;
  const double dy = (ny - oy) * inv;
  const double dz = (nz - oz) * inv;
  last_jerk_ = dx * dx + dy * dy + dz * dz;

  if (last_jerk_ > params_.jerk_threshold) {
    reports_since_high_jerk_ = 0;
    hint_ = true;
  } else {
    if (reports_since_high_jerk_ < params_.hold_window_reports)
      ++reports_since_high_jerk_;
    if (hint_ && reports_since_high_jerk_ >= params_.hold_window_reports)
      hint_ = false;
  }
  return hint_;
}

void MovementDetector::reset() {
  window_.clear();
  hint_ = false;
  last_jerk_ = 0.0;
  reports_since_high_jerk_ = 0;
}

}  // namespace sh::sensors
