// Speed estimation (§2.2.3): GPS speed outdoors; indoors a coarse estimate
// from accelerometer activity (the paper notes indoor speeds span a small
// range, so coarse is acceptable). The estimate decays to zero when the
// movement detector reports the device still.
#pragma once

#include "sensors/accelerometer.h"
#include "sensors/gps.h"

namespace sh::sensors {

class SpeedEstimator {
 public:
  struct Params {
    double gps_weight = 0.7;          ///< Blend of new GPS sample into estimate.
    double accel_activity_scale = 0.35;  ///< Custom-units activity -> m/s.
    double accel_alpha = 0.01;        ///< EWMA rate for accel activity.
    double max_indoor_speed = 3.0;    ///< Walking-range cap indoors.
  };

  SpeedEstimator() : SpeedEstimator(Params{}) {}
  explicit SpeedEstimator(Params params);

  void update_gps(const GpsFix& fix);
  /// Feeds one accelerometer report along with the current movement hint.
  void update_accel(const AccelReport& report, bool moving_hint);

  /// Current best speed estimate (m/s).
  double speed_mps() const noexcept;
  /// True if the estimate is based on GPS (outdoors) rather than activity.
  bool gps_based() const noexcept { return has_gps_; }

 private:
  Params params_;
  double gps_speed_ = 0.0;
  bool has_gps_ = false;
  double activity_ = 0.0;  ///< EWMA of report-to-report force change.
  double prev_x_ = 0.0, prev_y_ = 0.0, prev_z_ = 0.0;
  bool has_prev_ = false;
  bool moving_ = false;
};

}  // namespace sh::sensors
