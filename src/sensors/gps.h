// GPS receiver simulation: 1 Hz fixes with position/speed noise, heading
// only while moving, and no lock indoors (which is itself the paper's
// outdoor detector in §5.3).
#pragma once

#include "sensors/truth.h"
#include "util/rng.h"

namespace sh::sensors {

struct GpsFix {
  Time timestamp = 0;
  bool valid = false;          ///< False when no satellite lock (indoors).
  double x_m = 0.0;
  double y_m = 0.0;
  double speed_mps = 0.0;
  double heading_deg = 0.0;
  bool heading_valid = false;  ///< GPS heading needs motion to be defined.
};

class GpsSim {
 public:
  struct Params {
    Duration interval = kSecond;
    bool outdoors = true;             ///< Indoors: no lock, fixes invalid.
    double position_noise_m = 3.0;
    double speed_noise_mps = 0.3;
    double heading_noise_deg = 5.0;
    double min_speed_for_heading = 0.5;
    double dropout_probability = 0.02;  ///< Chance a fix is missed outdoors.
  };

  GpsSim(TruthTrack truth, util::Rng rng)
      : GpsSim(std::move(truth), rng, Params{}) {}
  GpsSim(TruthTrack truth, util::Rng rng, Params params);

  /// Produces the next fix, advancing internal time by the fix interval.
  GpsFix next();

  Time now() const noexcept { return now_; }

 private:
  TruthTrack truth_;
  util::Rng rng_;
  Params params_;
  Time now_ = 0;
};

}  // namespace sh::sensors
