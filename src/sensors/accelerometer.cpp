#include "sensors/accelerometer.h"

#include <cmath>
#include <numbers>

namespace sh::sensors {

AccelerometerSim::AccelerometerSim(sim::MobilityScenario scenario,
                                   util::Rng rng, Params params)
    : scenario_(std::move(scenario)), rng_(rng), params_(params) {}

AccelReport AccelerometerSim::next() {
  const Time t = now_;
  now_ += params_.report_interval;

  const sim::MotionState state = scenario_.state_at(t);
  const bool moving = sim::is_moving(state);
  const bool vehicle = state == sim::MotionState::kVehicle;

  AccelReport report;
  report.timestamp = t;
  // Rest orientation: gravity mostly on z (device flat), a little on x.
  report.x = 0.1 * params_.gravity_units;
  report.y = 0.0;
  report.z = params_.gravity_units;

  // Sensor noise floor is always present.
  report.x += rng_.normal(0.0, params_.static_noise);
  report.y += rng_.normal(0.0, params_.static_noise);
  report.z += rng_.normal(0.0, params_.static_noise);

  if (!moving) {
    // Decay any residual shake so a stop actually looks quiet.
    shake_x_ = shake_y_ = shake_z_ = 0.0;
    return report;
  }

  const double shake_scale = vehicle ? params_.vehicle_shake_scale : 1.0;
  const double jolt_scale = vehicle ? params_.vehicle_jolt_scale : 1.0;

  // Band-limited shake: AR(1) per axis.
  const double rho = params_.shake_rho;
  const double drive = params_.shake_sigma * shake_scale *
                       std::sqrt(1.0 - rho * rho);
  shake_x_ = rho * shake_x_ + rng_.normal(0.0, drive);
  shake_y_ = rho * shake_y_ + rng_.normal(0.0, drive);
  shake_z_ = rho * shake_z_ + rng_.normal(0.0, drive);
  report.x += shake_x_;
  report.y += shake_y_;
  report.z += shake_z_;

  // Walking-cadence bounce (suppressed in a vehicle).
  if (!vehicle) {
    const double phase =
        2.0 * std::numbers::pi * params_.bounce_hz * to_seconds(t);
    report.z += params_.bounce_amplitude * std::sin(phase);
    report.x += 0.4 * params_.bounce_amplitude * std::sin(0.5 * phase);
  }

  // Sharp jolts: Poisson arrivals, each lasting a few reports.
  if (t >= jolt_until_) {
    const double p_jolt =
        params_.jolt_rate_hz * to_seconds(params_.report_interval);
    if (rng_.bernoulli(p_jolt)) {
      const double mag =
          jolt_scale * rng_.exponential(params_.jolt_magnitude);
      jolt_x_ = rng_.normal(0.0, mag);
      jolt_y_ = rng_.normal(0.0, mag);
      jolt_z_ = rng_.normal(0.0, mag);
      jolt_until_ = t + 3 * params_.report_interval;
    }
  }
  if (t < jolt_until_) {
    report.x += jolt_x_;
    report.y += jolt_y_;
    report.z += jolt_z_;
  }
  return report;
}

}  // namespace sh::sensors
