// Accelerometer simulation.
//
// Stands in for the paper's Sparkfun serial accelerometer: three-axis force
// reports in uncalibrated "custom units" once every 2 ms. When the device is
// still the signal is a constant orientation vector plus a small sensor noise
// floor; when carried, rolled, or driven it gains band-limited shake, a
// walking-cadence bounce and occasional sharp jolts — the features the
// paper's jerk detector keys on (Fig 2-2).
#pragma once

#include "sim/mobility.h"
#include "util/rng.h"
#include "util/time.h"

namespace sh::sensors {

struct AccelReport {
  Time timestamp = 0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

class AccelerometerSim {
 public:
  struct Params {
    Duration report_interval = 2 * kMillisecond;  ///< Paper: 500 Hz.
    double gravity_units = 50.0;   ///< Constant rest-orientation magnitude.
    double static_noise = 0.12;    ///< Noise floor per axis (custom units).
    double shake_sigma = 2.2;      ///< Band-limited shake while moving.
    double shake_rho = 0.35;       ///< AR(1) correlation of the shake.
    double bounce_amplitude = 3.0; ///< Walking-cadence bounce.
    double bounce_hz = 2.0;
    double jolt_rate_hz = 12.0;    ///< Poisson rate of sharp jolts.
    double jolt_magnitude = 6.0;   ///< Mean jolt amplitude.
    /// Vehicle motion shakes less than walking (suspension) but jolts on
    /// bumps; scale factors applied to the above when in a vehicle.
    double vehicle_shake_scale = 0.6;
    double vehicle_jolt_scale = 1.4;
  };

  AccelerometerSim(sim::MobilityScenario scenario, util::Rng rng)
      : AccelerometerSim(std::move(scenario), rng, Params{}) {}
  AccelerometerSim(sim::MobilityScenario scenario, util::Rng rng,
                   Params params);

  /// Produces the next 2 ms report, advancing internal time.
  AccelReport next();

  Time now() const noexcept { return now_; }
  const Params& params() const noexcept { return params_; }

 private:
  sim::MobilityScenario scenario_;
  util::Rng rng_;
  Params params_;
  Time now_ = 0;
  double shake_x_ = 0.0, shake_y_ = 0.0, shake_z_ = 0.0;  // AR(1) state
  Time jolt_until_ = -1;
  double jolt_x_ = 0.0, jolt_y_ = 0.0, jolt_z_ = 0.0;
};

}  // namespace sh::sensors
