#include "sensors/microphone.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sh::sensors {

MicrophoneSim::MicrophoneSim(ActivityScript busy, util::Rng rng, Params params)
    : busy_(std::move(busy)), rng_(rng), params_(params) {
  assert(busy_);
}

MicSample MicrophoneSim::next() {
  const Time t = now_;
  now_ += params_.interval;

  MicSample sample;
  sample.timestamp = t;
  sample.level_db = params_.floor_db + rng_.normal(0.0, params_.floor_noise_db);

  if (busy_(t) && t >= event_until_) {
    const double p_event =
        params_.event_rate_hz * to_seconds(params_.interval);
    if (rng_.bernoulli(p_event)) {
      event_level_db_ = rng_.exponential(params_.event_gain_db);
      event_until_ =
          t + static_cast<Duration>(rng_.exponential(
                  static_cast<double>(params_.event_duration)));
    }
  }
  if (t < event_until_) {
    // Sound power adds; in dB that's a log-sum-exp of floor and event.
    const double event_db = params_.floor_db + event_level_db_ +
                            rng_.normal(0.0, 2.0);
    sample.level_db =
        10.0 * std::log10(std::pow(10.0, sample.level_db / 10.0) +
                          std::pow(10.0, event_db / 10.0));
  }
  return sample;
}

EnvironmentActivityDetector::EnvironmentActivityDetector(Params params)
    : params_(params) {
  assert(params_.window_samples > 1);
  assert(params_.stddev_threshold_db > 0.0);
}

bool EnvironmentActivityDetector::update(const MicSample& sample) {
  window_.push_back(sample.level_db);
  if (window_.size() > static_cast<std::size_t>(params_.window_samples))
    window_.pop_front();
  if (window_.size() < static_cast<std::size_t>(params_.window_samples))
    return busy_;

  double mean = 0.0;
  for (const double level : window_) mean += level;
  mean /= static_cast<double>(window_.size());
  double var = 0.0;
  for (const double level : window_) var += (level - mean) * (level - mean);
  var /= static_cast<double>(window_.size() - 1);
  last_stddev_ = std::sqrt(var);

  if (last_stddev_ > params_.stddev_threshold_db) {
    busy_ = true;
    quiet_run_ = 0;
  } else {
    if (quiet_run_ < params_.hold_samples) ++quiet_run_;
    if (busy_ && quiet_run_ >= params_.hold_samples) busy_ = false;
  }
  return busy_;
}

void EnvironmentActivityDetector::reset() {
  window_.clear();
  busy_ = false;
  last_stddev_ = 0.0;
  quiet_run_ = 0;
}

}  // namespace sh::sensors
