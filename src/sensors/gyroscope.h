// Rate gyroscope simulation: angular rate about the vertical axis with white
// noise and a slowly random-walking bias — accurate over short horizons,
// drifting over long ones, i.e. the complement of the compass.
#pragma once

#include "sensors/truth.h"
#include "util/rng.h"

namespace sh::sensors {

struct GyroReading {
  Time timestamp = 0;
  double rate_dps = 0.0;  ///< Heading rate in degrees per second.
};

class GyroscopeSim {
 public:
  struct Params {
    Duration interval = 10 * kMillisecond;  ///< 100 Hz.
    double noise_dps = 0.3;
    double initial_bias_dps = 0.4;
    double bias_walk_dps_per_sqrt_s = 0.05;
  };

  GyroscopeSim(TruthTrack truth, util::Rng rng)
      : GyroscopeSim(std::move(truth), rng, Params{}) {}
  GyroscopeSim(TruthTrack truth, util::Rng rng, Params params);

  GyroReading next();

  Time now() const noexcept { return now_; }
  Duration interval() const noexcept { return params_.interval; }

 private:
  TruthTrack truth_;
  util::Rng rng_;
  Params params_;
  Time now_ = 0;
  double bias_dps_;
  double prev_heading_deg_ = 0.0;
  bool has_prev_ = false;
};

}  // namespace sh::sensors
