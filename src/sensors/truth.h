// Ground-truth kinematics feeding the positioning sensors.
//
// Sensor simulators observe a noiseless KinematicSample and add their own
// error models. The default track derives straight-line motion from a
// MobilityScenario with an optional slow heading drift.
#pragma once

#include <cmath>
#include <functional>
#include <numbers>

#include "sim/mobility.h"
#include "util/time.h"

namespace sh::sensors {

struct KinematicSample {
  double x_m = 0.0;
  double y_m = 0.0;
  double speed_mps = 0.0;
  double heading_deg = 0.0;  ///< Degrees clockwise from north.
  bool moving = false;
};

using TruthTrack = std::function<KinematicSample(Time)>;

/// Builds a track from a mobility scenario: the device moves along
/// `heading_deg` (drifting by `heading_drift_dps` degrees/second while
/// moving) at the scenario's speed.
inline TruthTrack truth_from_scenario(sim::MobilityScenario scenario,
                                      double heading_deg = 90.0,
                                      double heading_drift_dps = 0.0) {
  return [scenario = std::move(scenario), heading_deg,
          heading_drift_dps](Time t) {
    KinematicSample s;
    s.moving = scenario.moving_at(t);
    s.speed_mps = scenario.speed_at(t);
    s.heading_deg = heading_deg;
    // Integrate position and heading over the scenario phases up to t.
    double x = 0.0, y = 0.0, heading = heading_deg;
    Time start = 0;
    for (const auto& phase : scenario.phases()) {
      const Time end = start + phase.duration;
      const Time upto = t < end ? t : end;
      if (upto > start && sim::is_moving(phase.state)) {
        const double dt = to_seconds(upto - start);
        const double rad = heading * std::numbers::pi / 180.0;
        x += phase.speed_mps * dt * std::sin(rad);
        y += phase.speed_mps * dt * std::cos(rad);
        heading += heading_drift_dps * dt;
      }
      if (t < end) break;
      start = end;
    }
    s.x_m = x;
    s.y_m = y;
    s.heading_deg = heading;
    return s;
  };
}

}  // namespace sh::sensors
