#include "sensors/gyroscope.h"

#include <cmath>

namespace sh::sensors {
namespace {

/// Signed smallest angular difference a - b in (-180, 180].
double signed_heading_delta(double a, double b) {
  double d = std::fmod(a - b, 360.0);
  if (d > 180.0) d -= 360.0;
  if (d <= -180.0) d += 360.0;
  return d;
}

}  // namespace

GyroscopeSim::GyroscopeSim(TruthTrack truth, util::Rng rng, Params params)
    : truth_(std::move(truth)),
      rng_(rng),
      params_(params),
      bias_dps_(rng_.normal(0.0, params.initial_bias_dps)) {}

GyroReading GyroscopeSim::next() {
  const Time t = now_;
  now_ += params_.interval;

  const double dt = to_seconds(params_.interval);
  const KinematicSample s = truth_(t);

  double true_rate = 0.0;
  if (has_prev_) {
    true_rate = signed_heading_delta(s.heading_deg, prev_heading_deg_) / dt;
  }
  prev_heading_deg_ = s.heading_deg;
  has_prev_ = true;

  bias_dps_ += rng_.normal(0.0, params_.bias_walk_dps_per_sqrt_s) *
               std::sqrt(dt);

  GyroReading reading;
  reading.timestamp = t;
  reading.rate_dps = true_rate + bias_dps_ + rng_.normal(0.0, params_.noise_dps);
  return reading;
}

}  // namespace sh::sensors
