// Hint services: the glue between sensor simulators, detectors, and the
// HintBus (paper Fig 2-1). Each service samples its sensor on the event loop
// and publishes a hint when the derived value changes (movement) or moves
// meaningfully (heading/speed). Queries return the most recent value, as the
// paper's "movement hint service" does.
#pragma once

#include "core/hint_bus.h"
#include "sensors/accelerometer.h"
#include "sensors/compass.h"
#include "sensors/gps.h"
#include "sensors/gyroscope.h"
#include "sensors/heading_estimator.h"
#include "sensors/movement_detector.h"
#include "sensors/speed_estimator.h"
#include "sim/event_loop.h"

namespace sh::sensors {

/// Publishes core::HintType::kMovement on every transition.
class MovementHintService {
 public:
  MovementHintService(sim::EventLoop& loop, core::HintBus& bus,
                      sim::NodeId self, AccelerometerSim accel,
                      MovementDetector::Params detector_params = {});

  /// Begins periodic sampling (one event per accelerometer report).
  void start();

  bool moving() const noexcept { return detector_.moving(); }
  double last_jerk() const noexcept { return detector_.last_jerk(); }

 private:
  void tick();

  sim::EventLoop& loop_;
  core::HintBus& bus_;
  sim::NodeId self_;
  AccelerometerSim accel_;
  MovementDetector detector_;
  bool last_published_ = false;
  bool published_any_ = false;
};

/// Publishes core::HintType::kHeading when the fused estimate moves by more
/// than `publish_delta_deg`, and kSpeed alongside when GPS is available.
class HeadingHintService {
 public:
  struct Params {
    double publish_delta_deg = 5.0;
    HeadingEstimator::Params estimator{};
  };

  HeadingHintService(sim::EventLoop& loop, core::HintBus& bus,
                     sim::NodeId self, CompassSim compass, GyroscopeSim gyro)
      : HeadingHintService(loop, bus, self, std::move(compass),
                           std::move(gyro), Params{}) {}
  HeadingHintService(sim::EventLoop& loop, core::HintBus& bus,
                     sim::NodeId self, CompassSim compass, GyroscopeSim gyro,
                     Params params);

  void start();

  double heading_deg() const noexcept { return estimator_.heading_deg(); }

 private:
  void gyro_tick();
  void compass_tick();
  void maybe_publish();

  sim::EventLoop& loop_;
  core::HintBus& bus_;
  sim::NodeId self_;
  CompassSim compass_;
  GyroscopeSim gyro_;
  HeadingEstimator estimator_;
  Params params_;
  double last_published_deg_ = 0.0;
  bool published_any_ = false;
};

}  // namespace sh::sensors
