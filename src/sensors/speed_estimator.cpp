#include "sensors/speed_estimator.h"

#include <algorithm>
#include <cmath>

namespace sh::sensors {

SpeedEstimator::SpeedEstimator(Params params) : params_(params) {}

void SpeedEstimator::update_gps(const GpsFix& fix) {
  if (!fix.valid) return;
  gps_speed_ = has_gps_
                   ? params_.gps_weight * fix.speed_mps +
                         (1.0 - params_.gps_weight) * gps_speed_
                   : fix.speed_mps;
  has_gps_ = true;
}

void SpeedEstimator::update_accel(const AccelReport& report,
                                  bool moving_hint) {
  moving_ = moving_hint;
  if (has_prev_) {
    const double change = std::sqrt(
        (report.x - prev_x_) * (report.x - prev_x_) +
        (report.y - prev_y_) * (report.y - prev_y_) +
        (report.z - prev_z_) * (report.z - prev_z_));
    activity_ = params_.accel_alpha * change +
                (1.0 - params_.accel_alpha) * activity_;
  }
  prev_x_ = report.x;
  prev_y_ = report.y;
  prev_z_ = report.z;
  has_prev_ = true;
}

double SpeedEstimator::speed_mps() const noexcept {
  if (has_gps_) return gps_speed_;
  if (!moving_) return 0.0;
  return std::min(params_.max_indoor_speed,
                  activity_ * params_.accel_activity_scale);
}

}  // namespace sh::sensors
