// Microphone-based environment-activity detection (paper §5.6).
//
// A changing environment around a *static* node (pedestrians, passing cars)
// destabilizes the channel much like self-motion does; the paper observes
// that RapidSample outperforms SampleRate in such conditions and proposes
// the microphone — ambient noise variation correlates strongly with nearby
// activity — as the sensor to detect them.
//
// MicrophoneSim produces ambient sound-level samples (dB SPL): a quiet
// floor plus transient events whose rate is set by the environment-activity
// script. EnvironmentActivityDetector turns the level stream into a boolean
// hint by thresholding the sliding-window standard deviation.
#pragma once

#include <deque>
#include <functional>

#include "util/rng.h"
#include "util/time.h"

namespace sh::sensors {

struct MicSample {
  Time timestamp = 0;
  double level_db = 0.0;  ///< A-weighted ambient level.
};

class MicrophoneSim {
 public:
  struct Params {
    Duration interval = 50 * kMillisecond;  ///< 20 Hz level metering.
    double floor_db = 38.0;      ///< Quiet-room ambient floor.
    double floor_noise_db = 0.8; ///< Metering noise on the floor.
    double event_rate_hz = 1.2;  ///< Activity events per second when busy.
    double event_gain_db = 14.0; ///< Mean loudness of an event above floor.
    Duration event_duration = 800 * kMillisecond;
  };

  /// `busy(t)` scripts whether the surroundings are active at time t.
  using ActivityScript = std::function<bool(Time)>;

  MicrophoneSim(ActivityScript busy, util::Rng rng)
      : MicrophoneSim(std::move(busy), rng, Params{}) {}
  MicrophoneSim(ActivityScript busy, util::Rng rng, Params params);

  MicSample next();

  Time now() const noexcept { return now_; }
  const Params& params() const noexcept { return params_; }

 private:
  ActivityScript busy_;
  util::Rng rng_;
  Params params_;
  Time now_ = 0;
  Time event_until_ = -1;
  double event_level_db_ = 0.0;
};

class EnvironmentActivityDetector {
 public:
  struct Params {
    int window_samples = 40;      ///< 2 s of 20 Hz samples.
    double stddev_threshold_db = 2.0;
    int hold_samples = 60;        ///< Quiet samples before the hint drops.
  };

  EnvironmentActivityDetector()
      : EnvironmentActivityDetector(Params{}) {}
  explicit EnvironmentActivityDetector(Params params);

  /// Feeds one level sample; returns the updated activity hint.
  bool update(const MicSample& sample);

  bool busy() const noexcept { return busy_; }
  /// Window standard deviation after the last update (0 while warming up).
  double last_stddev_db() const noexcept { return last_stddev_; }

  void reset();

 private:
  Params params_;
  std::deque<double> window_;
  bool busy_ = false;
  double last_stddev_ = 0.0;
  int quiet_run_ = 0;
};

}  // namespace sh::sensors
