#include "sensors/gps.h"

#include "core/hints.h"

namespace sh::sensors {

GpsSim::GpsSim(TruthTrack truth, util::Rng rng, Params params)
    : truth_(std::move(truth)), rng_(rng), params_(params) {}

GpsFix GpsSim::next() {
  const Time t = now_;
  now_ += params_.interval;

  GpsFix fix;
  fix.timestamp = t;
  if (!params_.outdoors || rng_.bernoulli(params_.dropout_probability)) {
    return fix;  // invalid
  }
  const KinematicSample s = truth_(t);
  fix.valid = true;
  fix.x_m = s.x_m + rng_.normal(0.0, params_.position_noise_m);
  fix.y_m = s.y_m + rng_.normal(0.0, params_.position_noise_m);
  fix.speed_mps =
      std::max(0.0, s.speed_mps + rng_.normal(0.0, params_.speed_noise_mps));
  if (s.moving && s.speed_mps >= params_.min_speed_for_heading) {
    fix.heading_valid = true;
    fix.heading_deg = core::normalize_heading(
        s.heading_deg + rng_.normal(0.0, params_.heading_noise_deg));
  }
  return fix;
}

}  // namespace sh::sensors
