// Hint-driven physical-layer parameter policies (paper §5.3).
//
// Two policies, both requiring only hints already available:
//  * Cyclic prefix selection: outdoor environments (detected by GPS lock)
//    have longer delay spreads; extending the OFDM guard interval trades a
//    fixed symbol-time overhead for immunity to inter-symbol interference.
//  * Speed-limited frame sizing: the channel coherence time shrinks with
//    speed; frames longer than a fraction of it outlive their preamble
//    channel estimate. The policy caps frame airtime at a fraction of the
//    coherence time implied by the speed hint.
#pragma once

#include "mac/rates.h"
#include "util/time.h"

namespace sh::phy {

struct CyclicPrefixOption {
  Duration guard_ns;          ///< Guard interval, nanoseconds.
  double symbol_efficiency;   ///< Useful fraction of the symbol period.
};

/// Guard-interval choice from the outdoor hint (GPS lock = outdoors).
/// Standard 802.11a GI is 800 ns over a 4 us symbol; the extended option
/// doubles the guard, stretching the symbol to 4.8 us (efficiency 2/3 of
/// 4.8 -> 0.833x of the standard rate).
CyclicPrefixOption choose_cyclic_prefix(bool outdoors) noexcept;

/// Probability multiplier applied to frame delivery when the channel delay
/// spread exceeds the guard interval (inter-symbol interference): 1.0 when
/// covered, decaying with the uncovered excess.
double isi_delivery_factor(Duration guard_ns, double delay_spread_ns) noexcept;

/// Channel coherence time implied by a speed hint (Clarke model,
/// Tc ~= 0.423 / f_d with f_d = v * f_c / c).
Duration coherence_time(double speed_mps, double carrier_ghz = 5.8) noexcept;

/// Largest frame payload (bytes) whose airtime at `rate` stays within
/// `fraction` of the coherence time at `speed_mps`; at least 64 bytes.
int max_frame_bytes_for_speed(double speed_mps, mac::RateIndex rate,
                              double fraction = 0.5,
                              double carrier_ghz = 5.8);

}  // namespace sh::phy
