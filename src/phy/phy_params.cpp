#include "phy/phy_params.h"

#include <algorithm>
#include <cmath>

#include "mac/airtime.h"

namespace sh::phy {

CyclicPrefixOption choose_cyclic_prefix(bool outdoors) noexcept {
  if (outdoors) return CyclicPrefixOption{1600, 3.2 / 4.8};
  return CyclicPrefixOption{800, 3.2 / 4.0};
}

double isi_delivery_factor(Duration guard_ns, double delay_spread_ns) noexcept {
  if (delay_spread_ns <= static_cast<double>(guard_ns)) return 1.0;
  // Uncovered delay spread smears energy across symbols; model the delivery
  // penalty as exponential in the uncovered fraction of a guard period.
  const double excess =
      (delay_spread_ns - static_cast<double>(guard_ns)) /
      static_cast<double>(guard_ns);
  return std::exp(-1.5 * excess);
}

Duration coherence_time(double speed_mps, double carrier_ghz) noexcept {
  if (speed_mps <= 0.01) return 10 * kSecond;  // Effectively static.
  const double doppler_hz = speed_mps * carrier_ghz * 1e9 / 299'792'458.0;
  const double tc_s = 0.423 / doppler_hz;
  return static_cast<Duration>(tc_s * 1e6);
}

int max_frame_bytes_for_speed(double speed_mps, mac::RateIndex rate,
                              double fraction, double carrier_ghz) {
  const Duration budget = static_cast<Duration>(
      fraction * static_cast<double>(coherence_time(speed_mps, carrier_ghz)));
  // Binary search the largest payload whose frame duration fits the budget.
  int lo = 64;
  int hi = 2304;  // 802.11 maximum MSDU.
  if (mac::frame_duration(rate, lo) > budget) return lo;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (mac::frame_duration(rate, mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace sh::phy
