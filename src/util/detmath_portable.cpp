// Portable (baseline-ISA) detmath backend. Compiled with -ffp-contract=off;
// see detmath_kernels.h for the shared per-element cores.
#define SH_DETMATH_BACKEND portable

#include "util/detmath_kernels.h"

namespace sh::util::detmath::internal {

const Vtable& portable_vtable() noexcept {
  return sh::util::detmath::portable::vtable("portable");
}

}  // namespace sh::util::detmath::internal
