// Crash-safe file output.
//
// Every JSON artifact the tools emit (sh.sweep.v1, sh.bench.v1, bench
// baselines) and the checkpoint journal header go through
// atomic_write_file: the bytes land in `<path>.tmp`, are flushed and
// fsync'd, and only then renamed over `path`. A kill at any instant leaves
// either the old file or the new one — never a torn half-write.
#pragma once

#include <string>
#include <string_view>

namespace sh::util {

/// Atomically replaces `path` with `contents` via write-temp + fsync +
/// rename. Returns false (leaving any previous file untouched and cleaning
/// up the temp) if any step fails.
bool atomic_write_file(const std::string& path, std::string_view contents);

/// fsync(2) on an open descriptor; returns false on failure. Exposed so the
/// checkpoint journal can reuse the same durability primitive per record.
bool sync_fd(int fd);

}  // namespace sh::util
