// Simulated-time representation shared by every subsystem.
//
// All simulation timestamps are integral microseconds since simulation start.
// An integral representation keeps event ordering exact (no FP drift over long
// runs) and makes trace slot arithmetic (5 ms slots, 2 ms sensor reports)
// trivially exact.
#pragma once

#include <cstdint>

namespace sh {

/// Simulated time in microseconds since simulation start.
using Time = std::int64_t;

/// Durations share the representation of absolute times.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;

/// Convenience constructors, so call sites read `5 * kMillisecond` or
/// `seconds(2.5)` instead of raw integer literals.
constexpr Duration microseconds(std::int64_t us) noexcept { return us; }
constexpr Duration milliseconds(std::int64_t ms) noexcept { return ms * kMillisecond; }
constexpr Duration seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Conversions back to floating-point for reporting.
constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_milliseconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace sh
