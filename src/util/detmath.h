// Deterministic, vectorizable elementary-function kernels (sin/cos/exp).
//
// Why this exists: the block trace-generation kernel (DESIGN.md "Block trace
// kernel") evaluates fading sinusoids and logistic delivery probabilities
// over whole slot arrays. libm's scalar sin/cos cannot be batched without
// changing results (vector math libraries carry multi-ulp tolerances), so
// the repo owns one implementation with a hard contract:
//
//   * element determinism — for every input x, every entry point (scalar
//     call, batch call, any backend, any compiler vectorization width)
//     produces the identical IEEE-754 double. The per-element operation
//     sequence is written once in detmath_kernels.h with every fused
//     multiply-add spelled std::fma, and the backend translation units
//     compile with -ffp-contract=off, so no backend can fuse or reorder
//     differently from another.
//   * accuracy — faithfully rounded (error < 1 ulp) over the supported
//     argument range; arguments outside it (|x| > 2^26 for sin/cos,
//     |x| > 700 for exp, NaN/inf) fall back to libm per element, applied
//     identically by every entry point.
//
// Backends: a portable one (baseline ISA) and, on x86-64 builds whose
// compiler supports it, an AVX2+FMA one that the autovectorizer turns into
// 4-wide loops. Backend choice is a pure speed decision made once per
// process via CPU detection; it can never change a result bit.
#pragma once

#include <cstddef>

namespace sh::util::detmath {

/// Scalar forms. dsin/dcos/dexp are drop-in replacements for std::sin,
/// std::cos, std::exp wherever trace generation needs batchability.
double dsin(double x) noexcept;
double dcos(double x) noexcept;
double dexp(double x) noexcept;
/// Both coordinates of the same angle; bit-identical to {dsin(x), dcos(x)}.
void dsincos(double x, double& sin_out, double& cos_out) noexcept;

/// Batch forms: out[i] is bit-identical to the scalar call on x[i].
void sin_n(const double* x, std::size_t n, double* out) noexcept;
void cos_n(const double* x, std::size_t n, double* out) noexcept;
void exp_n(const double* x, std::size_t n, double* out) noexcept;
void sincos_n(const double* x, std::size_t n, double* sin_out,
              double* cos_out) noexcept;

/// Fused fading-path accumulator, the hot inner kernel of gain_db:
///   theta  = omega * tau[i]          (one rounding, never contracted)
///   gi[i] += dcos(theta + phase_i)
///   gq[i] += dcos(theta + phase_q)
/// Matches FadingProcess::gain_db's per-slot arithmetic exactly; the scalar
/// path calls it with n = 1.
void fade_path_accumulate_n(const double* tau, std::size_t n, double omega,
                            double phase_i, double phase_q, double* gi,
                            double* gq) noexcept;

/// Fused sinusoid accumulator, the shadowing inner kernel:
///   acc[i] += amp * dsin(omega * x[i] + phase)
/// with `omega * x[i]` and `+ phase` rounded separately, matching
/// ShadowingProcess::offset_db's per-component arithmetic.
void sinusoid_accumulate_n(const double* x, std::size_t n, double amp,
                           double omega, double phase, double* acc) noexcept;

/// Fast-trace rotation kernels (approximate path only — never used by the
/// exact block kernel). `m` unit rotators with states (c[p], s[p]) and
/// per-step rotation (dc[p], ds[p]): for each of `n` steps, out[k] gets the
/// sum of the current cos-states (in lane order p = 0..m-1), then every
/// rotator advances one step. Deterministic across backends like the rest
/// of detmath, but *approximate* versus re-evaluating dcos at each angle:
/// the recurrence drifts by O(n * eps), which is why callers re-seed the
/// states from dsincos at every block boundary.
void rotator_sum_block(double* c, double* s, const double* dc,
                       const double* ds, std::size_t m, std::size_t n,
                       double* out) noexcept;

/// Single rotator variant emitting both coordinates per step: cos_out[k] /
/// sin_out[k] get the state *before* the k-th advance.
void rotator_emit_block(double& c, double& s, double dc, double ds,
                        std::size_t n, double* cos_out,
                        double* sin_out) noexcept;

/// Name of the active backend ("avx2" or "portable"), for logs and tests.
const char* backend() noexcept;

}  // namespace sh::util::detmath
