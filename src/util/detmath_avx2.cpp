// AVX2+FMA detmath backend: the same kernels as the portable TU, compiled
// with -mavx2 -mfma (and still -ffp-contract=off) so the autovectorizer
// emits 4-wide loops. Bit-identical to the portable backend by the
// detmath_kernels.h contract — every fused operation is an explicit
// std::fma in the shared source. Only reached after runtime CPU detection.
#define SH_DETMATH_BACKEND avx2

#include "util/detmath_kernels.h"

namespace sh::util::detmath::internal {

const Vtable& avx2_vtable() noexcept {
  return sh::util::detmath::avx2::vtable("avx2");
}

}  // namespace sh::util::detmath::internal
