#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace sh::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "\n");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      emit_cell(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_pm(double value, double half, int decimals) {
  return fmt(value, decimals) + " +/- " + fmt(half, decimals);
}

}  // namespace sh::util
