#include "util/stats.h"

#include <cmath>

namespace sh::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double Percentile::quantile(double q) const {
  assert(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

void SlidingWindowRate::add(bool success) {
  if (window_.size() == capacity_) {
    if (window_.front()) --successes_;
    window_.pop_front();
  }
  window_.push_back(success);
  if (success) ++successes_;
}

double SlidingWindowRate::rate() const noexcept {
  if (window_.empty()) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(window_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::int64_t>((x - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace sh::util
