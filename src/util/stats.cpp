#include "util/stats.h"

#include <cmath>

namespace sh::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void Percentile::sort() {
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double Percentile::quantile(double q) const {
  assert(!samples_.empty());
  // No mutation here: concurrent const readers must never race. When the
  // buffer isn't known-sorted, sort a scratch copy instead.
  std::vector<double> scratch;
  const std::vector<double>* samples = &samples_;
  if (!sorted_) {
    scratch = samples_;
    std::sort(scratch.begin(), scratch.end());
    samples = &scratch;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples->size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples->size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return (*samples)[lo] + frac * ((*samples)[hi] - (*samples)[lo]);
}

void SlidingWindowRate::add(bool success) {
  if (window_.size() == capacity_) {
    if (window_.front()) --successes_;
    window_.pop_front();
  }
  window_.push_back(success);
  if (success) ++successes_;
}

double SlidingWindowRate::rate() const noexcept {
  if (window_.empty()) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(window_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double x) noexcept {
  // NaN has no bin: (x - lo_) / width_ is NaN, every comparison below is
  // false, and casting NaN to an integer is UB. Count it and move on.
  if (std::isnan(x)) {
    ++dropped_;
    return;
  }
  // Clamp while still in floating point: the quotient can be ±inf or exceed
  // int64 range (e.g. x = 1e300 with a narrow bin width), and the
  // double→int64 cast is UB for any value outside the representable range.
  double q = (x - lo_) / width_;
  const double max_bin = static_cast<double>(counts_.size() - 1);
  q = std::clamp(q, 0.0, max_bin);
  ++counts_[static_cast<std::size_t>(q)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace sh::util
