// Minimal leveled logger. Simulations are hot loops, so logging is compiled
// around a cheap level check and formats lazily via iostream only when the
// level is enabled.
#pragma once

#include <sstream>
#include <string>

namespace sh::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr with a level tag. Prefer the SH_LOG macro.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sh::util

/// Usage: SH_LOG(kInfo) << "trace " << id << " done";
#define SH_LOG(level)                                                \
  if (::sh::util::LogLevel::level < ::sh::util::log_level()) {       \
  } else                                                             \
    ::sh::util::detail::LogStream(::sh::util::LogLevel::level)
