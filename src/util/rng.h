// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library takes an explicit seed (or an
// Rng&) so that experiments are exactly reproducible.  The generator is
// xoshiro256++ (public-domain algorithm by Blackman & Vigna): fast, tiny
// state, and high statistical quality — more than adequate for channel /
// mobility simulation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sh::util {

/// xoshiro256++ generator, seeded via splitmix64 so that any 64-bit seed —
/// including 0 — produces a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  /// Re-initialize state from a 64-bit seed.
  void reseed(std::uint64_t seed) noexcept;

  /// Raw 64-bit output (UniformRandomBitGenerator interface).
  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Derive an independent child generator (for per-entity streams). The
  /// child's stream is decorrelated from the parent's by splitmix hashing.
  Rng fork() noexcept;

  /// Deterministically derives an independent seed from a base seed and a
  /// stream index, using the same splitmix-style finalizer that fork() and
  /// reseed() rely on. Unlike fork() this is a pure function — the sweep
  /// engine uses it so run (base_seed, i) gets the same stream no matter
  /// which thread, or in which order, it executes.
  static std::uint64_t derive_seed(std::uint64_t base,
                                   std::uint64_t stream) noexcept;

 private:
  std::uint64_t next() noexcept;

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sh::util
