// Small statistics toolkit used by the measurement and benchmark layers:
// running moments, order statistics, confidence intervals, EWMA smoothing,
// fixed-capacity sliding windows and histograms.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sh::util {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the 95% confidence interval of the mean, using the normal
  /// approximation (the evaluation aggregates 10+ traces per point, where the
  /// normal and t intervals are within a few percent of each other).
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers order-statistics queries (median, arbitrary
/// quantiles). Storage is O(n).
///
/// quantile() is genuinely const: it never mutates the sample buffer. (An
/// earlier version sorted `samples_` lazily behind `mutable`, which made two
/// concurrent const readers — e.g. pool workers reporting the same
/// percentile — a data race.) Unsorted buffers are sorted into a scratch
/// copy per query; call sort() once after the last add() to make subsequent
/// queries copy-free.
class Percentile {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() == 1;
  }
  void clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// Sorts the buffer in place so later quantile() calls skip the scratch
  /// copy. Call after a batch of add()s; mutating, hence non-const.
  void sort();

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// Quantile by linear interpolation between closest ranks; q in [0, 1].
  /// Requires at least one sample. Thread-safe against concurrent const
  /// access (no hidden mutation).
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Exponentially weighted moving average. `alpha` is the weight of the newest
/// sample; the first sample initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  void clear() noexcept { initialized_ = false; value_ = 0.0; }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-capacity sliding window over boolean outcomes (e.g. probe delivery).
/// Maintains the success count incrementally so rate() is O(1).
class SlidingWindowRate {
 public:
  explicit SlidingWindowRate(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  void add(bool success);
  void clear() { window_.clear(); successes_ = 0; }

  std::size_t size() const noexcept { return window_.size(); }
  bool full() const noexcept { return window_.size() == capacity_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Fraction of successes among the samples currently in the window;
  /// 0 when empty.
  double rate() const noexcept;

 private:
  std::size_t capacity_;
  std::deque<bool> window_;
  std::size_t successes_ = 0;
};

/// Fixed-bin histogram over [lo, hi); finite values outside are clamped to
/// the edge bins (including ±inf) so mass is never silently dropped. NaN
/// carries no position at all, so it lands in a counted `dropped` bucket
/// rather than poisoning an edge bin. Bin selection clamps in floating
/// point *before* the integer cast — casting an out-of-range double to an
/// integer is undefined behaviour, not saturation.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void clear() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    dropped_ = 0;
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Samples binned so far (excludes dropped NaNs).
  std::uint64_t total() const noexcept { return total_; }
  /// NaN samples rejected by add(); they are counted, never binned.
  std::uint64_t dropped() const noexcept { return dropped_; }
  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of binned samples in the given bin; 0 when empty.
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sh::util
