#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace sh::util {

bool sync_fd(int fd) { return ::fsync(fd) == 0; }

bool atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (!sync_fd(fd)) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace sh::util
