#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace sh::util {
namespace {

// Process-wide log threshold — diagnostics only, never read by anything
// that lands in an output artifact.
std::atomic<LogLevel> g_level{LogLevel::kWarn};  // shlint:allow(T1)

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %s\n", tag(level), message.c_str());
}

}  // namespace sh::util
