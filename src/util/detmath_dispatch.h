// Internal backend vtable for detmath. Each backend translation unit
// (detmath_portable.cpp, detmath_avx2.cpp) exposes one of these; detmath.cpp
// picks one at first use via CPU detection. Not part of the public API.
#pragma once

#include <cstddef>

namespace sh::util::detmath::internal {

struct Vtable {
  double (*dsin)(double) noexcept;
  double (*dcos)(double) noexcept;
  double (*dexp)(double) noexcept;
  void (*dsincos)(double, double&, double&) noexcept;
  void (*sin_n)(const double*, std::size_t, double*) noexcept;
  void (*cos_n)(const double*, std::size_t, double*) noexcept;
  void (*exp_n)(const double*, std::size_t, double*) noexcept;
  void (*sincos_n)(const double*, std::size_t, double*, double*) noexcept;
  void (*fade_path_accumulate_n)(const double*, std::size_t, double, double,
                                 double, double*, double*) noexcept;
  void (*sinusoid_accumulate_n)(const double*, std::size_t, double, double,
                                double, double*) noexcept;
  void (*rotator_sum_block)(double*, double*, const double*, const double*,
                            std::size_t, std::size_t, double*) noexcept;
  void (*rotator_emit_block)(double&, double&, double, double, std::size_t,
                             double*, double*) noexcept;
  const char* name;
};

const Vtable& portable_vtable() noexcept;
#if defined(SH_DETMATH_HAVE_AVX2)
const Vtable& avx2_vtable() noexcept;
#endif

}  // namespace sh::util::detmath::internal
