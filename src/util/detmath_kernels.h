// Per-element cores and batch loops behind detmath.h, written once and
// compiled into each backend translation unit (detmath_portable.cpp,
// detmath_avx2.cpp) inside a backend-specific namespace.
//
// Determinism contract (see detmath.h): every floating-point operation in
// this file is spelled explicitly — fused multiply-adds only where
// std::fma is written, separately rounded multiply/add everywhere else —
// and the including TUs compile with -ffp-contract=off. A vectorized loop
// therefore performs exactly the per-element operation sequence of the
// scalar form, lane by lane, and both backends agree bit-for-bit (software
// std::fma is correctly rounded, i.e. identical to the hardware
// instruction).
//
// Algorithms: Cody-Waite argument reduction against double-double pi/2
// (resp. ln 2) with the 1.5*2^52 round-to-nearest trick, then minimax
// (fdlibm) polynomials for sin/cos and a degree-13 Taylor tail for exp.
// Faithful rounding holds for |x| <= 2^26 (trig) and |x| <= 700 (exp);
// outside those ranges — and for NaN/inf — every entry point falls back to
// libm per element, under the same per-element predicate, so the fallback
// can never disagree between scalar and batch forms.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/detmath_dispatch.h"

#ifndef SH_DETMATH_BACKEND
#error "detmath_kernels.h must be included with SH_DETMATH_BACKEND defined"
#endif

namespace sh::util::detmath {
namespace SH_DETMATH_BACKEND {

// 1.5 * 2^52: adding then subtracting rounds to the nearest integer (ties
// to even) for |v| <= 2^51, and the low mantissa bits of the intermediate
// sum hold that integer's two's complement.
inline constexpr double kShifter = 0x1.8p52;
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

inline constexpr double kTwoOverPi = 0x1.45f306dc9c883p-1;
inline constexpr double kPio2Hi = 0x1.921fb54442d18p0;
inline constexpr double kPio2Lo = 0x1.1a62633145c07p-54;
/// Reduction validity bound for sin/cos arguments.
inline constexpr double kTrigBound = 0x1p26;

// fdlibm __kernel_sin minimax coefficients, |r| <= pi/4.
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;

// fdlibm __kernel_cos minimax coefficients, |r| <= pi/4.
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;

inline constexpr double kLog2e = 0x1.71547652b82fep0;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
/// Reduction validity bound for exp arguments (no overflow, no subnormals).
inline constexpr double kExpBound = 700.0;

// 1/2! .. 1/13!: exp(r) = 1 + r + r^2 * q(r) with q a degree-11 Horner
// chain; the r^14/14! remainder is ~4e-18 at |r| = ln(2)/2.
inline constexpr double kE2 = 5.00000000000000000000e-01;
inline constexpr double kE3 = 1.66666666666666666667e-01;
inline constexpr double kE4 = 4.16666666666666666667e-02;
inline constexpr double kE5 = 8.33333333333333333333e-03;
inline constexpr double kE6 = 1.38888888888888888889e-03;
inline constexpr double kE7 = 1.98412698412698412698e-04;
inline constexpr double kE8 = 2.48015873015873015873e-05;
inline constexpr double kE9 = 2.75573192239858906526e-06;
inline constexpr double kE10 = 2.75573192239858906526e-07;
inline constexpr double kE11 = 2.50521083854417187751e-08;
inline constexpr double kE12 = 2.08767569878680989792e-09;
inline constexpr double kE13 = 1.60590438368216145994e-10;

/// The shared in-range predicates. Every entry point — scalar, batch fast
/// loop preconditions, batch guarded loops — routes through these, so the
/// core-vs-libm decision is a pure per-element function of the input.
/// (NaN compares false, so NaN always takes the libm fallback.)
inline bool trig_in_range(double x) noexcept {
  return std::fabs(x) <= kTrigBound;
}
inline bool exp_in_range(double x) noexcept { return std::fabs(x) <= kExpBound; }

struct SinCos {
  double s;
  double c;
};

/// sin and cos of x for |x| <= kTrigBound, faithfully rounded.
inline SinCos sincos_core(double x) noexcept {
  // Round x * (2/pi) to the nearest integer n; the rounded sum's low
  // mantissa bits give n mod 4 (2^51 is divisible by 4).
  const double v = x * kTwoOverPi;
  const double t = v + kShifter;
  const double fn = t - kShifter;
  const std::uint64_t tb = std::bit_cast<std::uint64_t>(t);
  // r = x - n * pi/2 against double-double pi/2; each fma rounds once, so
  // |r - r_true| <~ 1.2e-16 absolute — benign for every consumer here
  // (results are magnitude <= 1 and the error never amplifies).
  double r = std::fma(-fn, kPio2Hi, x);
  r = std::fma(-fn, kPio2Lo, r);

  const double z = r * r;
  double ps = kS6;
  ps = std::fma(ps, z, kS5);
  ps = std::fma(ps, z, kS4);
  ps = std::fma(ps, z, kS3);
  ps = std::fma(ps, z, kS2);
  const double sr = std::fma(r * z, std::fma(z, ps, kS1), r);

  double pc = kC6;
  pc = std::fma(pc, z, kC5);
  pc = std::fma(pc, z, kC4);
  pc = std::fma(pc, z, kC3);
  pc = std::fma(pc, z, kC2);
  pc = std::fma(pc, z, kC1);
  // fdlibm's compensated 1 - z/2 + z^2*pc: (1 - w) - hz recovers the
  // rounding error of w = 1 - hz exactly.  Every add here is deliberately
  // unfused — fusing (z*z)*pc into the sum would change cr in the last ulp.
  const double hz = 0.5 * z;
  const double w = 1.0 - hz;
  const double cr = w + (((1.0 - w) - hz) + (z * z) * pc);

  // Quadrant n mod 4: swap sin/cos for odd n, then flip signs — sin
  // negative in quadrants 2,3 (bit 1 of n), cos negative in 1,2. All done
  // with integer mask selects so the whole core is branch-free (exact
  // values are selected; no arithmetic happens on the selected results).
  const std::uint64_t swap_mask = 0 - (tb & 1);
  const std::uint64_t srb = std::bit_cast<std::uint64_t>(sr);
  const std::uint64_t crb = std::bit_cast<std::uint64_t>(cr);
  const std::uint64_t s0 = (srb & ~swap_mask) | (crb & swap_mask);
  const std::uint64_t c0 = (crb & ~swap_mask) | (srb & swap_mask);
  const std::uint64_t sin_sign = (tb & 2) << 62;
  const std::uint64_t cos_sign = ((tb + 1) & 2) << 62;
  SinCos out;
  out.s = std::bit_cast<double>(s0 ^ sin_sign);
  out.c = std::bit_cast<double>(c0 ^ cos_sign);
  return out;
}

/// exp(x) for |x| <= kExpBound, faithfully rounded.
inline double exp_core(double x) noexcept {
  const double v = x * kLog2e;
  const double t = v + kShifter;
  const double fn = t - kShifter;
  const std::uint64_t tb = std::bit_cast<std::uint64_t>(t);
  // Two's-complement k = round(x * log2 e) from the shifter sum's mantissa.
  const std::int64_t k =
      static_cast<std::int64_t>(tb & ((1ULL << 52) - 1)) - (1LL << 51);
  double r = std::fma(-fn, kLn2Hi, x);
  r = std::fma(-fn, kLn2Lo, r);

  double p = kE13;
  p = std::fma(p, r, kE12);
  p = std::fma(p, r, kE11);
  p = std::fma(p, r, kE10);
  p = std::fma(p, r, kE9);
  p = std::fma(p, r, kE8);
  p = std::fma(p, r, kE7);
  p = std::fma(p, r, kE6);
  p = std::fma(p, r, kE5);
  p = std::fma(p, r, kE4);
  p = std::fma(p, r, kE3);
  p = std::fma(p, r, kE2);
  const double s = std::fma(r * r, p, r);
  const double e = 1.0 + s;
  // 2^k by exponent-field construction; |x| <= 700 keeps k + 1023 in
  // [13, 2034], so the scale is always normal and the product finite.
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return e * scale;
}

// ---------------------------------------------------------------------------
// Entry points (per backend). Scalar forms first; batch loops below run a
// branch-free fast loop when a conservative precheck proves every element
// in range, else a guarded loop applying the same per-element predicate the
// scalar forms use.

inline double dsin_s(double x) noexcept {
  return trig_in_range(x) ? sincos_core(x).s : std::sin(x);
}
inline double dcos_s(double x) noexcept {
  return trig_in_range(x) ? sincos_core(x).c : std::cos(x);
}
inline double dexp_s(double x) noexcept {
  return exp_in_range(x) ? exp_core(x) : std::exp(x);
}
inline void dsincos_s(double x, double& sin_out, double& cos_out) noexcept {
  if (trig_in_range(x)) {
    const SinCos sc = sincos_core(x);
    sin_out = sc.s;
    cos_out = sc.c;
  } else {
    sin_out = std::sin(x);
    cos_out = std::cos(x);
  }
}

/// Count of elements that fail `pred` — 0 means the fast loop is safe.
template <typename Pred>
inline std::size_t count_out_of_range(const double* x, std::size_t n,
                                      Pred pred) noexcept {
  const double* __restrict xs = x;
  std::size_t oob = 0;
  for (std::size_t i = 0; i < n; ++i) oob += pred(xs[i]) ? 0U : 1U;
  return oob;
}

inline void sin_n_b(const double* x, std::size_t n, double* out) noexcept {
  const double* __restrict xs = x;
  double* __restrict o = out;
  if (count_out_of_range(xs, n, trig_in_range) == 0) {
    for (std::size_t i = 0; i < n; ++i) o[i] = sincos_core(xs[i]).s;
  } else {
    for (std::size_t i = 0; i < n; ++i) o[i] = dsin_s(xs[i]);
  }
}

inline void cos_n_b(const double* x, std::size_t n, double* out) noexcept {
  const double* __restrict xs = x;
  double* __restrict o = out;
  if (count_out_of_range(xs, n, trig_in_range) == 0) {
    for (std::size_t i = 0; i < n; ++i) o[i] = sincos_core(xs[i]).c;
  } else {
    for (std::size_t i = 0; i < n; ++i) o[i] = dcos_s(xs[i]);
  }
}

inline void exp_n_b(const double* x, std::size_t n, double* out) noexcept {
  const double* __restrict xs = x;
  double* __restrict o = out;
  if (count_out_of_range(xs, n, exp_in_range) == 0) {
    for (std::size_t i = 0; i < n; ++i) o[i] = exp_core(xs[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) o[i] = dexp_s(xs[i]);
  }
}

inline void sincos_n_b(const double* x, std::size_t n, double* sin_out,
                       double* cos_out) noexcept {
  const double* __restrict xs = x;
  double* __restrict so = sin_out;
  double* __restrict co = cos_out;
  if (count_out_of_range(xs, n, trig_in_range) == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const SinCos sc = sincos_core(xs[i]);
      so[i] = sc.s;
      co[i] = sc.c;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) dsincos_s(xs[i], so[i], co[i]);
  }
}

inline void fade_path_accumulate_n_b(const double* tau, std::size_t n,
                                     double omega, double phase_i,
                                     double phase_q, double* gi,
                                     double* gq) noexcept {
  const double* __restrict ts = tau;
  double* __restrict gis = gi;
  double* __restrict gqs = gq;
  // Conservative span precheck: fading paths have |omega| <= 2*pi and
  // phases in [0, 2*pi), so |omega*tau + phase| <= 2*pi*(|tau| + 1); if
  // that stays under kTrigBound, every per-element predicate below would
  // pass and the branch-free loop is bit-equivalent.
  const double tau_fast_bound = kTrigBound / kTwoPi - 1.0;
  const auto tau_fast = [tau_fast_bound](double t) noexcept {
    return std::fabs(t) <= tau_fast_bound;
  };
  if (count_out_of_range(ts, n, tau_fast) == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const double theta = omega * ts[i];
      gis[i] += sincos_core(theta + phase_i).c;
      gqs[i] += sincos_core(theta + phase_q).c;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double theta = omega * ts[i];
      gis[i] += dcos_s(theta + phase_i);
      gqs[i] += dcos_s(theta + phase_q);
    }
  }
}

inline void sinusoid_accumulate_n_b(const double* x, std::size_t n, double amp,
                                    double omega, double phase,
                                    double* acc) noexcept {
  const double* __restrict xs = x;
  double* __restrict as = acc;
  // Conservative bound solving |omega*x + phase| <= kTrigBound for |x|;
  // omega = 0 divides to +inf (every x passes), and a non-finite bound
  // from pathological omega/phase just routes everything to the guarded
  // loop — never wrong, only slower.
  const double x_fast_bound = (kTrigBound - std::fabs(phase)) / std::fabs(omega);
  const auto x_fast = [x_fast_bound](double t) noexcept {
    return std::fabs(t) <= x_fast_bound;
  };
  if (x_fast_bound > 0.0 && count_out_of_range(xs, n, x_fast) == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const double theta = omega * xs[i];
      // Accumulate unfused: amp*sin rounds once before the add, exactly
      // as the scalar reference path does.
      as[i] += amp * sincos_core(theta + phase).s;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double theta = omega * xs[i];
      // Same unfused accumulate as the fast path above.
      as[i] += amp * dsin_s(theta + phase);
    }
  }
}

inline void rotator_sum_block_b(double* c, double* s, const double* dc,
                                const double* ds, std::size_t m, std::size_t n,
                                double* out) noexcept {
  double* __restrict cs = c;
  double* __restrict ss = s;
  const double* __restrict dcs = dc;
  const double* __restrict dss = ds;
  double* __restrict os = out;
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t p = 0; p < m; ++p) acc += cs[p];
    os[k] = acc;
    for (std::size_t p = 0; p < m; ++p) {
      // Givens step, deliberately unfused: each product rounds before the
      // add/sub so the rotation matches the scalar recurrence bit-for-bit.
      const double nc = cs[p] * dcs[p] - ss[p] * dss[p];
      const double ns = ss[p] * dcs[p] + cs[p] * dss[p];
      cs[p] = nc;
      ss[p] = ns;
    }
  }
}

inline void rotator_emit_block_b(double& c, double& s, double dc, double ds,
                                 std::size_t n, double* cos_out,
                                 double* sin_out) noexcept {
  double cc = c;
  double sc = s;
  double* __restrict co = cos_out;
  double* __restrict so = sin_out;
  for (std::size_t k = 0; k < n; ++k) {
    co[k] = cc;
    so[k] = sc;
    // Same deliberately unfused Givens step as rotator_sum_block_b.
    const double nc = cc * dc - sc * ds;
    const double ns = sc * dc + cc * ds;
    cc = nc;
    sc = ns;
  }
  c = cc;
  s = sc;
}

// Non-inline vtable thunks (function pointers need addresses).
inline double vt_dsin(double x) noexcept { return dsin_s(x); }
inline double vt_dcos(double x) noexcept { return dcos_s(x); }
inline double vt_dexp(double x) noexcept { return dexp_s(x); }

inline const internal::Vtable& vtable(const char* name) noexcept {
  static const internal::Vtable v{
      vt_dsin,       vt_dcos,     vt_dexp,
      dsincos_s,     sin_n_b,     cos_n_b,
      exp_n_b,       sincos_n_b,  fade_path_accumulate_n_b,
      sinusoid_accumulate_n_b, rotator_sum_block_b, rotator_emit_block_b,
      name,
  };
  return v;
}

}  // namespace SH_DETMATH_BACKEND
}  // namespace sh::util::detmath
