#include "util/rng.h"

#include <cmath>

namespace sh::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  // Unsigned arithmetic throughout: for wide ranges `hi - lo` (and, once the
  // span exceeds INT64_MAX, adding the sampled offset to `lo`) overflows
  // signed 64-bit; the unsigned ops and the final narrowing cast are
  // modular by definition. Results are unchanged for every in-range input.
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) noexcept {
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - uniform());
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept {
  return Rng{next() ^ 0xD1B54A32D192ED03ULL};
}

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  // Two rounds of splitmix64 over a stream-salted base. One round already
  // decorrelates adjacent indices; the second guards against the structured
  // (base, base+1, ...) inputs the sweep engine feeds in.
  std::uint64_t x = base ^ (stream * 0xD1B54A32D192ED03ULL + 0x8CB92BA72F3D8DD7ULL);
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace sh::util
