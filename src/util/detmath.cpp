// Public detmath entry points: one-time backend selection, then forwarding.
// Backend choice is a pure speed decision (the backends are bit-identical);
// it is made once per process so every call in a run uses the same code.
#include "util/detmath.h"

#include "util/detmath_dispatch.h"

namespace sh::util::detmath {
namespace {

const internal::Vtable& pick_backend() noexcept {
#if defined(SH_DETMATH_HAVE_AVX2) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return internal::avx2_vtable();
  }
#endif
  return internal::portable_vtable();
}

const internal::Vtable& active() noexcept {
  static const internal::Vtable& v = pick_backend();
  return v;
}

}  // namespace

double dsin(double x) noexcept { return active().dsin(x); }
double dcos(double x) noexcept { return active().dcos(x); }
double dexp(double x) noexcept { return active().dexp(x); }
void dsincos(double x, double& sin_out, double& cos_out) noexcept {
  active().dsincos(x, sin_out, cos_out);
}

void sin_n(const double* x, std::size_t n, double* out) noexcept {
  active().sin_n(x, n, out);
}
void cos_n(const double* x, std::size_t n, double* out) noexcept {
  active().cos_n(x, n, out);
}
void exp_n(const double* x, std::size_t n, double* out) noexcept {
  active().exp_n(x, n, out);
}
void sincos_n(const double* x, std::size_t n, double* sin_out,
              double* cos_out) noexcept {
  active().sincos_n(x, n, sin_out, cos_out);
}

void fade_path_accumulate_n(const double* tau, std::size_t n, double omega,
                            double phase_i, double phase_q, double* gi,
                            double* gq) noexcept {
  active().fade_path_accumulate_n(tau, n, omega, phase_i, phase_q, gi, gq);
}

void sinusoid_accumulate_n(const double* x, std::size_t n, double amp,
                           double omega, double phase, double* acc) noexcept {
  active().sinusoid_accumulate_n(x, n, amp, omega, phase, acc);
}

void rotator_sum_block(double* c, double* s, const double* dc,
                       const double* ds, std::size_t m, std::size_t n,
                       double* out) noexcept {
  active().rotator_sum_block(c, s, dc, ds, m, n, out);
}

void rotator_emit_block(double& c, double& s, double dc, double ds,
                        std::size_t n, double* cos_out,
                        double* sin_out) noexcept {
  active().rotator_emit_block(c, s, dc, ds, n, cos_out, sin_out);
}

const char* backend() noexcept { return active().name; }

}  // namespace sh::util::detmath
