// Text table / CSV emitters used by the benchmark binaries so that every
// reproduced figure prints its rows in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sh::util {

/// Accumulates rows of string cells and renders them as an aligned monospace
/// table (for terminals) or CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double value, int decimals = 3);
/// Formats `value ± half` (e.g. a mean with its 95% CI half-width).
std::string fmt_pm(double value, double half, int decimals = 3);

}  // namespace sh::util
