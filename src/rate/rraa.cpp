#include "rate/rraa.h"

#include <algorithm>
#include <cassert>

#include "mac/airtime.h"

namespace sh::rate {

Rraa::Rraa(Params params) : params_(params), current_(mac::fastest_rate()) {
  assert(params_.window_frames > 0);
  recompute_thresholds();
}

void Rraa::recompute_thresholds() {
  // Critical loss for rate r vs r-1: p* = 1 - t(r)/t(r-1), where t is the
  // per-attempt airtime. Above p*, dropping to r-1 yields more goodput.
  auto airtime = [&](mac::RateIndex r) {
    return static_cast<double>(
        mac::attempt_duration(r, params_.payload_bytes, /*retry=*/0));
  };
  for (mac::RateIndex r = mac::slowest_rate(); r <= mac::fastest_rate(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (r == mac::slowest_rate()) {
      mtl_[i] = 1.0;  // Nowhere lower to go.
    } else {
      const double critical = 1.0 - airtime(r) / airtime(r - 1);
      mtl_[i] = std::min(0.95, params_.alpha * critical);
    }
    if (r == mac::fastest_rate()) {
      ori_[i] = 0.0;  // Nowhere higher to go.
    } else {
      const double critical_up = 1.0 - airtime(r + 1) / airtime(r);
      ori_[i] = std::max(0.0, critical_up / params_.beta);
    }
  }
}

void Rraa::start_window() {
  frames_in_window_ = 0;
  losses_in_window_ = 0;
}

mac::RateIndex Rraa::pick_rate(Time /*now*/) { return current_; }

void Rraa::on_result(Time /*now*/, mac::RateIndex rate_used, bool acked) {
  assert(mac::valid_rate(rate_used));
  if (rate_used != current_) return;  // Stale feedback after a rate change.

  ++frames_in_window_;
  if (!acked) ++losses_in_window_;

  const auto i = static_cast<std::size_t>(current_);
  const double loss = static_cast<double>(losses_in_window_) /
                      static_cast<double>(frames_in_window_);

  // Early termination (RRAA's own optimization): if the losses collected so
  // far already guarantee the window verdict will be "down", act now.
  const double guaranteed_loss = static_cast<double>(losses_in_window_) /
                                 static_cast<double>(params_.window_frames);
  if (guaranteed_loss > mtl_[i]) {
    current_ = std::max(mac::slowest_rate(), current_ - 1);
    start_window();
    return;
  }

  // Otherwise decisions wait for the window boundary — the reaction lag
  // that costs RRAA against RapidSample on mobile channels (paper §3.5).
  if (frames_in_window_ < params_.window_frames) return;

  if (loss > mtl_[i]) {
    current_ = std::max(mac::slowest_rate(), current_ - 1);
  } else if (loss < ori_[i]) {
    current_ = std::min(mac::fastest_rate(), current_ + 1);
  }
  start_window();
}

void Rraa::reset() {
  current_ = mac::fastest_rate();
  start_window();
}

}  // namespace sh::rate
