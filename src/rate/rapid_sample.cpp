#include "rate/rapid_sample.h"

#include <cassert>

namespace sh::rate {
namespace {
// "Never failed": far enough in the past that any delta_fail check passes.
constexpr Time kNeverFailed = -1'000'000'000;
}  // namespace

RapidSample::RapidSample(Params params)
    : params_(params),
      current_(mac::fastest_rate()),
      pre_sample_rate_(mac::fastest_rate()) {
  assert(params_.delta_success > 0);
  assert(params_.delta_fail > 0);
  failed_time_.fill(kNeverFailed);
  picked_time_.fill(0);
}

mac::RateIndex RapidSample::sample_candidate(Time now) const {
  // Walk up from the slowest rate; eligibility requires every rate at or
  // below the candidate to be clean within delta_fail (a recent failure at a
  // slower rate implies the channel cannot support anything faster either).
  mac::RateIndex best = current_;
  for (mac::RateIndex i = mac::slowest_rate(); i <= mac::fastest_rate(); ++i) {
    if (now - failed_time_[static_cast<std::size_t>(i)] <= params_.delta_fail)
      break;
    if (i > best) best = i;
  }
  return best;
}

mac::RateIndex RapidSample::pick_rate(Time /*now*/) { return current_; }

void RapidSample::on_result(Time now, mac::RateIndex rate_used, bool acked) {
  assert(mac::valid_rate(rate_used));
  const mac::RateIndex last = rate_used;

  mac::RateIndex next = last;
  if (!acked) {
    failed_time_[static_cast<std::size_t>(last)] = now;
    // Revert a failed sample to the pre-sample rate; otherwise step down.
    next = sampling_ ? pre_sample_rate_
                     : std::max(mac::slowest_rate(), last - 1);
    sampling_ = false;
  } else {
    sampling_ = false;
    if (now - picked_time_[static_cast<std::size_t>(last)] >
        params_.delta_success) {
      const mac::RateIndex candidate = sample_candidate(now);
      if (candidate > last) {
        next = candidate;
        sampling_ = true;
        pre_sample_rate_ = last;
      }
    }
  }

  if (next != last) picked_time_[static_cast<std::size_t>(next)] = now;
  current_ = next;
}

void RapidSample::reset() {
  current_ = mac::fastest_rate();
  pre_sample_rate_ = mac::fastest_rate();
  sampling_ = false;
  failed_time_.fill(kNeverFailed);
  picked_time_.fill(0);
}

}  // namespace sh::rate
