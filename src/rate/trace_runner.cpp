#include "rate/trace_runner.h"

#include <algorithm>
#include <cassert>

#include "mac/airtime.h"
#include "util/rng.h"

namespace sh::rate {
namespace {

/// One packet: SNR feedback once, then a link-layer retry chain. Each
/// attempt consults the adapter, charges airtime (with growing backoff), and
/// reports its fate. Returns whether any attempt delivered the packet.
bool attempt_packet(RateAdapter& adapter, const channel::PacketFateTrace& trace,
                    const RunConfig& config, Time& t, util::Rng& floor_rng) {
  if (config.provide_snr) {
    adapter.on_snr(t, trace.snr_db(std::max<Time>(0, t - config.snr_lag)));
  }
  adapter.on_packet_start(t);
  for (int retry = 0; retry <= config.link_retries; ++retry) {
    const mac::RateIndex r = adapter.pick_rate(t);
    const bool delivered = trace.delivered(t, r) &&
                           !floor_rng.bernoulli(config.iid_loss_floor);
    adapter.on_result(t, r, delivered);
    t += mac::attempt_duration(r, config.payload_bytes, retry);
    if (delivered) return true;
  }
  return false;
}

}  // namespace

RunResult run_trace(RateAdapter& adapter, const channel::PacketFateTrace& trace,
                    const RunConfig& config) {
  assert(!trace.empty());
  const Time end = trace.duration();
  RunResult result;
  util::Rng floor_rng(config.floor_seed);
  Time t = 0;

  if (config.workload == Workload::kUdp) {
    while (t < end) {
      ++result.attempts;
      if (attempt_packet(adapter, trace, config, t, floor_rng))
        ++result.delivered;
    }
  } else {
    transport::TcpModel tcp(config.tcp);
    while (t < end) {
      if (tcp.stalled(t)) {
        t = std::min(end, tcp.stall_until());
        if (t >= end) break;
      }
      const int window = tcp.window();
      int delivered_in_round = 0;
      int sent = 0;
      for (int i = 0; i < window && t < end; ++i) {
        ++sent;
        ++result.attempts;
        if (attempt_packet(adapter, trace, config, t, floor_rng)) {
          ++delivered_in_round;
          ++result.delivered;
        }
      }
      tcp.on_round(t, sent, delivered_in_round);
    }
  }

  result.duration_s = to_seconds(end);
  result.throughput_mbps = static_cast<double>(result.delivered) *
                           static_cast<double>(config.payload_bytes) * 8.0 /
                           result.duration_s / 1e6;
  result.delivery_ratio =
      result.attempts == 0
          ? 0.0
          : static_cast<double>(result.delivered) /
                static_cast<double>(result.attempts);
  return result;
}

}  // namespace sh::rate
