#include "rate/snr_adapters.h"

#include <cassert>

#include "channel/snr_model.h"

namespace sh::rate {

Rbar::Rbar(Params params) : params_(params) {}

mac::RateIndex Rbar::pick_rate(Time /*now*/) {
  if (!have_snr_) return mac::slowest_rate();
  return channel::best_rate_for_snr(last_snr_db_ + params_.calibration_bias_db,
                                    params_.target_delivery,
                                    params_.payload_bytes);
}

void Rbar::on_result(Time /*now*/, mac::RateIndex /*rate_used*/,
                     bool /*acked*/) {
  // Purely SNR-driven; frame fates carry no extra signal for RBAR.
}

void Rbar::on_snr(Time /*now*/, double snr_db) {
  last_snr_db_ = snr_db;
  have_snr_ = true;
}

void Rbar::reset() {
  have_snr_ = false;
  last_snr_db_ = 0.0;
}

Charm::Charm(Params params) : params_(params) { assert(params_.window > 0); }

void Charm::prune(Time now) {
  while (!history_.empty() && now - history_.front().first > params_.window) {
    sum_snr_ -= history_.front().second;
    history_.pop_front();
  }
}

double Charm::mean_snr_db() const noexcept {
  if (history_.empty()) return 0.0;
  return sum_snr_ / static_cast<double>(history_.size());
}

mac::RateIndex Charm::pick_rate(Time now) {
  prune(now);
  if (history_.empty()) return mac::slowest_rate();
  return channel::best_rate_for_snr(
      mean_snr_db() + params_.calibration_bias_db, params_.target_delivery,
      params_.payload_bytes);
}

void Charm::on_result(Time /*now*/, mac::RateIndex /*rate_used*/,
                      bool /*acked*/) {}

void Charm::on_snr(Time now, double snr_db) {
  history_.emplace_back(now, snr_db);
  sum_snr_ += snr_db;
  prune(now);
}

void Charm::reset() {
  history_.clear();
  sum_snr_ = 0.0;
}

}  // namespace sh::rate
