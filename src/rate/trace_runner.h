// Trace-driven evaluation harness for rate adapters (the paper's modified
// ns-3 setup, §3.3): replays a PacketFateTrace, charging realistic 802.11a
// airtime per attempt and letting the recorded per-slot fates decide delivery.
// Supports a saturating UDP workload and the simplified TCP model (whose
// timeouts punish bursty mobile loss, as observed in §3.5).
#pragma once

#include "channel/trace.h"
#include "rate/adapter.h"
#include "transport/tcp.h"

namespace sh::rate {

enum class Workload { kUdp, kTcp };

struct RunConfig {
  Workload workload = Workload::kUdp;
  int payload_bytes = 1000;
  /// Link-layer retransmissions per packet (802.11 retries a frame several
  /// times before giving up). The adapter is consulted afresh for every
  /// attempt, so a protocol that reacts within the chain — RapidSample
  /// stepping down mid-burst — retries at a smarter rate.
  int link_retries = 4;
  /// Independent per-attempt loss floor: collisions and noise spikes
  /// shorter than a trace slot that hit single frames even when the channel
  /// is comfortably above threshold. These isolated losses are exactly what
  /// static-optimized protocols must smooth over and what RapidSample
  /// overreacts to when the device is not actually moving (paper §3.5).
  double iid_loss_floor = 0.02;
  std::uint64_t floor_seed = 99;
  /// Whether to feed the adapter receiver-SNR observations before each pick
  /// (consumed only by SNR-based protocols).
  bool provide_snr = true;
  /// Staleness of the SNR observation relative to the data frame (the
  /// RTS/CTS or overheard-frame lag).
  Duration snr_lag = kMillisecond;
  transport::TcpModel::Params tcp{};
};

struct RunResult {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double throughput_mbps = 0.0;
  double delivery_ratio = 0.0;
};

/// Replays `trace` through `adapter` and returns throughput accounting.
/// The adapter is NOT reset first; callers wanting a fresh run call reset().
RunResult run_trace(RateAdapter& adapter, const channel::PacketFateTrace& trace,
                    const RunConfig& config = {});

}  // namespace sh::rate
