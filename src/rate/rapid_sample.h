// RapidSample (paper §3.1, Fig 3-2): frame-based rate adaptation designed
// for rapidly changing (mobile) channels.
//
// Behaviour, per the paper:
//  * Start at the fastest rate.
//  * On a failed ACK, drop one rate immediately and record the failure time
//    (losses are strongly correlated over the ~10 ms channel coherence time,
//    so re-trying the failed rate straight away mostly wastes packets).
//  * After delta_success ms of success at the current rate, sample the
//    fastest rate that has not failed within the last delta_fail ms and has
//    no slower rate that failed within that interval — allowing
//    opportunistic multi-step jumps.
//  * If the sampled rate fails, return to the rate in use before the sample
//    rather than stepping down from the sample.
//
// Paper constants: delta_success = 5 ms, delta_fail = 10 ms (the measured
// mobile coherence time). No training required.
#pragma once

#include <array>

#include "rate/adapter.h"

namespace sh::rate {

class RapidSample final : public RateAdapter {
 public:
  struct Params {
    Duration delta_success = 5 * kMillisecond;
    Duration delta_fail = 10 * kMillisecond;
  };

  RapidSample() : RapidSample(Params{}) {}
  explicit RapidSample(Params params);

  std::string_view name() const override { return "RapidSample"; }
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void reset() override;

  const Params& params() const noexcept { return params_; }
  bool sampling() const noexcept { return sampling_; }

 private:
  /// Fastest rate i such that no rate j <= i failed within delta_fail of
  /// `now`; falls back to the current rate when none is eligible above it.
  mac::RateIndex sample_candidate(Time now) const;

  Params params_;
  mac::RateIndex current_;
  bool sampling_ = false;
  mac::RateIndex pre_sample_rate_;
  std::array<Time, mac::kNumRates> failed_time_{};
  std::array<Time, mac::kNumRates> picked_time_{};
};

}  // namespace sh::rate
