// Common interface for bit-rate adaptation protocols.
//
// The trace runner drives an adapter one transmission attempt at a time:
// pick_rate() before each attempt, on_result() with the link-layer ACK
// outcome after it. SNR-based protocols additionally receive on_snr()
// observations (modelling RBAR's RTS/CTS probe or CHARM's overheard
// frames). Frame-based protocols ignore them.
#pragma once

#include <string_view>

#include "mac/rates.h"
#include "util/time.h"

namespace sh::rate {

class RateAdapter {
 public:
  virtual ~RateAdapter() = default;

  virtual std::string_view name() const = 0;

  /// Signals the start of a new packet (the first attempt of a retry
  /// chain). Lets protocols with per-chain behaviour — SampleRate's
  /// multi-rate retry ladder — distinguish chain retries from new packets.
  virtual void on_packet_start(Time /*now*/) {}

  /// Chooses the rate for the next transmission attempt at time `now`.
  virtual mac::RateIndex pick_rate(Time now) = 0;

  /// Reports the fate of the attempt made at `now` at `rate_used`.
  virtual void on_result(Time now, mac::RateIndex rate_used, bool acked) = 0;

  /// Delivers a receiver-SNR observation (dB). Default: ignored.
  virtual void on_snr(Time /*now*/, double /*snr_db*/) {}

  /// Restores initial state (fresh connection).
  virtual void reset() = 0;
};

}  // namespace sh::rate
