#include "rate/sample_rate.h"

#include <cassert>
#include <limits>
#include <vector>

#include "mac/airtime.h"

namespace sh::rate {

SampleRateAdapter::SampleRateAdapter(Params params, util::Rng rng)
    : params_(params), rng_(rng) {
  assert(params_.window > 0);
  assert(params_.sample_every >= 2);
}

double SampleRateAdapter::lossless_tx_time_us(mac::RateIndex r) const {
  return static_cast<double>(
      mac::attempt_duration(r, params_.payload_bytes, /*retry=*/0));
}

void SampleRateAdapter::prune(Time now, RateStats& stats) {
  while (!stats.outcomes.empty() &&
         now - stats.outcomes.front().when > params_.window) {
    if (stats.outcomes.front().acked) --stats.successes;
    stats.outcomes.pop_front();
  }
  if (stats.outcomes.empty()) stats.consecutive_failures = 0;
}

double SampleRateAdapter::avg_tx_time_us(Time now, mac::RateIndex r) {
  auto& stats = stats_[static_cast<std::size_t>(r)];
  prune(now, stats);
  if (stats.outcomes.empty()) return lossless_tx_time_us(r);
  if (stats.successes == 0) return std::numeric_limits<double>::infinity();
  // Every attempt in the window paid airtime; only successes delivered data.
  const double total_airtime =
      lossless_tx_time_us(r) * static_cast<double>(stats.outcomes.size());
  return total_airtime / static_cast<double>(stats.successes);
}

mac::RateIndex SampleRateAdapter::best_rate(Time now) {
  // Only rates with at least one success in the window qualify as "best";
  // rates without data are explored through the sampling slots, not adopted
  // blindly (adopting them would make the protocol thrash between stale
  // rates every time the window slides past their last sample).
  mac::RateIndex best = -1;
  double best_time = std::numeric_limits<double>::infinity();
  for (mac::RateIndex r = mac::slowest_rate(); r <= mac::fastest_rate(); ++r) {
    auto& stats = stats_[static_cast<std::size_t>(r)];
    prune(now, stats);
    if (stats.successes == 0) continue;
    const double t = avg_tx_time_us(now, r);
    if (t < best_time) {
      best_time = t;
      best = r;
    }
  }
  if (best >= 0) return best;
  // No success anywhere in the window: descend the ladder — the fastest
  // rate that has not accumulated the failure limit (Bicket's "try the
  // highest rate that hasn't failed four successive times").
  for (mac::RateIndex r = mac::fastest_rate(); r > mac::slowest_rate(); --r) {
    if (stats_[static_cast<std::size_t>(r)].consecutive_failures <
        params_.max_consecutive_failures) {
      return r;
    }
  }
  return mac::slowest_rate();
}

mac::RateIndex SampleRateAdapter::pick_rate(Time now) {
  mac::RateIndex best = best_rate(now);
  // Retry chain semantics of the 2005 SampleRate: a failed *sample* falls
  // back to the primary rate, but ordinary retries stay on the primary for
  // the whole chain. Under the correlated losses of a mobile channel the
  // retries land inside the same fade — the "oversampling the same bit
  // rate" cost RapidSample is designed to avoid (paper §3.1).
  if (chain_failures_ > 0) return best;
  ++packet_counter_;
  if (packet_counter_ % params_.sample_every != 0) return best;

  // Sampling slot: consider rates other than the best whose lossless time is
  // below the best's average (i.e. that could possibly beat it) and that are
  // not failure-locked.
  const double best_avg = avg_tx_time_us(now, best);
  std::vector<mac::RateIndex> candidates;
  for (mac::RateIndex r = mac::slowest_rate(); r <= mac::fastest_rate(); ++r) {
    if (r == best) continue;
    auto& stats = stats_[static_cast<std::size_t>(r)];
    prune(now, stats);
    if (stats.consecutive_failures >= params_.max_consecutive_failures)
      continue;
    if (lossless_tx_time_us(r) >= best_avg) continue;
    candidates.push_back(r);
  }
  if (candidates.empty()) return best;
  const auto pick = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1));
  return candidates[pick];
}

void SampleRateAdapter::on_packet_start(Time /*now*/) { chain_failures_ = 0; }

void SampleRateAdapter::on_result(Time now, mac::RateIndex rate_used,
                                  bool acked) {
  assert(mac::valid_rate(rate_used));
  auto& stats = stats_[static_cast<std::size_t>(rate_used)];
  stats.outcomes.push_back(Outcome{now, acked});
  if (acked) {
    ++stats.successes;
    stats.consecutive_failures = 0;
    chain_failures_ = 0;
  } else {
    ++stats.consecutive_failures;
    ++chain_failures_;
  }
  prune(now, stats);
}

void SampleRateAdapter::reset() {
  for (auto& s : stats_) s = RateStats{};
  packet_counter_ = 0;
  chain_failures_ = 0;
}

}  // namespace sh::rate
