#include "rate/hinted_runner.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/faulty_sensors.h"
#include "mac/airtime.h"
#include "rate/hint_aware.h"
#include "sensors/accelerometer.h"
#include "sensors/movement_detector.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace sh::rate {
namespace {

/// The receiver's detector output precomputed as a step timeline.
struct DetectorTimeline {
  std::vector<std::pair<Time, bool>> transitions;  // (time, new value)

  bool value_at(Time t) const {
    bool value = false;
    for (const auto& [when, v] : transitions) {
      if (when > t) break;
      value = v;
    }
    return value;
  }
};

DetectorTimeline run_detector(const sim::MobilityScenario& scenario,
                              Duration until, std::uint64_t seed) {
  sensors::AccelerometerSim accel(scenario, util::Rng(seed));
  sensors::MovementDetector detector;
  DetectorTimeline timeline;
  bool last = false;
  timeline.transitions.emplace_back(0, false);
  while (accel.now() < until) {
    const auto report = accel.next();
    const bool moving = detector.update(report);
    if (moving != last) {
      timeline.transitions.emplace_back(report.timestamp, moving);
      last = moving;
    }
  }
  return timeline;
}

/// Detector over a faulty accelerometer: dropped reports never reach the
/// detector (a gap in the stream), stuck/noisy reports do and mislead it.
DetectorTimeline run_detector_faulty(const sim::MobilityScenario& scenario,
                                     Duration until, std::uint64_t seed,
                                     const fault::FaultPlan& plan,
                                     std::uint64_t* reports_dropped) {
  fault::FaultyAccelerometer accel(
      sensors::AccelerometerSim(scenario, util::Rng(seed)), plan);
  sensors::MovementDetector detector;
  DetectorTimeline timeline;
  bool last = false;
  timeline.transitions.emplace_back(0, false);
  while (accel.now() < until) {
    const auto report = accel.next();
    if (!report) continue;
    const bool moving = detector.update(*report);
    if (moving != last) {
      timeline.transitions.emplace_back(report->timestamp, moving);
      last = moving;
    }
  }
  *reports_dropped = accel.dropped();
  return timeline;
}

}  // namespace

HintedRunResult run_trace_with_hint_protocol(
    const channel::PacketFateTrace& trace,
    const sim::MobilityScenario& scenario, const HintedRunConfig& config) {
  assert(!trace.empty());
  const Time end = trace.duration();
  HintedRunResult result;
  const fault::FaultPlan plan(config.fault, config.fault_seed);
  const DetectorTimeline detector =
      config.fault.sensor_null()
          ? run_detector(scenario, end, config.sensor_seed)
          : run_detector_faulty(scenario, end, config.sensor_seed, plan,
                                &result.sensor_reports_dropped);

  // Sender-side view of the receiver's movement hint, updated only when a
  // frame actually crosses the link.
  bool sender_view = false;
  bool sender_has_view = false;
  Time sender_view_updated = 0;
  std::uint64_t hint_delivery_index = 0;
  // For hint-delay accounting: when did the sender first reflect each
  // detector transition?
  std::vector<Time> reflected_at(detector.transitions.size(), -1);

  auto deliver_hint_to_sender = [&](Time now) {
    // Each carriage of the hint (ACK bit or standalone frame) is one fault
    // opportunity; a dropped carriage leaves the sender's view — and its
    // staleness watermark — untouched.
    if (plan.hint_dropped(hint_delivery_index++)) {
      ++result.hint_deliveries_dropped;
      return;
    }
    const bool current = detector.value_at(now);
    sender_view = current;
    sender_has_view = true;
    sender_view_updated = now - config.fault.hint.extra_staleness;
    for (std::size_t i = 0; i < detector.transitions.size(); ++i) {
      if (detector.transitions[i].first <= now && reflected_at[i] < 0 &&
          detector.transitions[i].second == current) {
        // Transitions superseded by a newer opposite value can never be
        // individually reflected; mark everything up to now consistent
        // with the delivered value.
        reflected_at[i] = now;
      }
    }
  };

  HintAwareRateAdapter adapter(
      HintAwareRateAdapter::HintQuery{
          [&](Time now) -> std::optional<bool> {
            if (config.hint_max_age > 0 &&
                (!sender_has_view ||
                 now - sender_view_updated > config.hint_max_age)) {
              return std::nullopt;
            }
            return sender_view;
          }},
      util::Rng(42));
  util::Rng floor_rng(config.run.floor_seed);
  util::Rng standalone_rng(config.sensor_seed ^ 0x5A5A);
  transport::TcpModel tcp(config.run.tcp);
  Time t = 0;
  Time last_hint_carried = 0;

  auto maybe_standalone = [&](Time now) {
    // Receiver notices its hint changed and nothing has carried it.
    if (detector.value_at(now) == sender_view) return;
    if (now - last_hint_carried < config.standalone_after) return;
    ++result.standalone_hint_frames;
    last_hint_carried = now;
    // A short 6M frame; delivery decided by the trace (plus the floor).
    if (trace.delivered(now, mac::slowest_rate()) &&
        !standalone_rng.bernoulli(config.run.iid_loss_floor)) {
      deliver_hint_to_sender(now);
    }
  };

  auto attempt_packet = [&](Time& now) {
    if (config.run.provide_snr) {
      adapter.on_snr(now,
                     trace.snr_db(std::max<Time>(0, now - config.run.snr_lag)));
    }
    adapter.on_packet_start(now);
    for (int retry = 0; retry <= config.run.link_retries; ++retry) {
      const mac::RateIndex r = adapter.pick_rate(now);
      const bool delivered = trace.delivered(now, r) &&
                             !floor_rng.bernoulli(config.run.iid_loss_floor);
      adapter.on_result(now, r, delivered);
      now += mac::attempt_duration(r, config.run.payload_bytes, retry);
      if (delivered) {
        // The link-layer ACK carries the receiver's CURRENT movement bit.
        deliver_hint_to_sender(now);
        last_hint_carried = now;
        return true;
      }
    }
    return false;
  };

  if (config.run.workload == Workload::kUdp) {
    while (t < end) {
      ++result.run.attempts;
      if (attempt_packet(t)) ++result.run.delivered;
      maybe_standalone(t);
    }
  } else {
    while (t < end) {
      if (tcp.stalled(t)) {
        // During the stall the receiver may push standalone hint frames.
        while (t < std::min(end, tcp.stall_until())) {
          maybe_standalone(t);
          t += config.standalone_after / 2;
        }
        if (t >= end) break;
      }
      const int window = tcp.window();
      int delivered_in_round = 0;
      int sent = 0;
      for (int i = 0; i < window && t < end; ++i) {
        ++sent;
        ++result.run.attempts;
        if (attempt_packet(t)) {
          ++delivered_in_round;
          ++result.run.delivered;
        }
      }
      tcp.on_round(t, sent, delivered_in_round);
      maybe_standalone(t);
    }
  }

  result.run.duration_s = to_seconds(end);
  result.run.throughput_mbps =
      static_cast<double>(result.run.delivered) *
      static_cast<double>(config.run.payload_bytes) * 8.0 /
      result.run.duration_s / 1e6;
  result.run.delivery_ratio =
      result.run.attempts == 0
          ? 0.0
          : static_cast<double>(result.run.delivered) /
                static_cast<double>(result.run.attempts);

  // Hint-delay accounting over genuine transitions (skip the initial state).
  double delay_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 1; i < detector.transitions.size(); ++i) {
    if (reflected_at[i] < 0) continue;
    delay_sum += to_seconds(reflected_at[i] - detector.transitions[i].first);
    ++counted;
  }
  result.detector_transitions =
      detector.transitions.empty() ? 0 : detector.transitions.size() - 1;
  result.mean_hint_delay_s = counted > 0 ? delay_sum / counted : 0.0;
  return result;
}

}  // namespace sh::rate
