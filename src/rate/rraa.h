// RRAA (Wong et al., MobiCom 2006): Robust Rate Adaptation Algorithm.
//
// Frame-based like SampleRate but far more reactive: it evaluates the loss
// ratio over a short per-rate estimation window (tens of frames) against two
// airtime-derived thresholds — the Maximum Tolerable Loss (above which the
// next lower rate delivers more) and the Opportunistic Rate Increase
// threshold (below which the next higher rate is worth trying) — and moves
// one step accordingly. We implement the core loss-window logic; RRAA's
// adaptive RTS filter addresses collision losses, which the single-link
// trace replay does not contain.
#pragma once

#include <array>

#include "rate/adapter.h"

namespace sh::rate {

class Rraa final : public RateAdapter {
 public:
  struct Params {
    int window_frames = 40;
    double alpha = 1.25;  ///< MTL = alpha * critical loss for stepping down.
    double beta = 2.0;    ///< ORI = critical loss of next rate / beta.
    int payload_bytes = 1000;
  };

  Rraa() : Rraa(Params{}) {}
  explicit Rraa(Params params);

  std::string_view name() const override { return "RRAA"; }
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void reset() override;

  double mtl(mac::RateIndex r) const { return mtl_[static_cast<std::size_t>(r)]; }
  double ori(mac::RateIndex r) const { return ori_[static_cast<std::size_t>(r)]; }

 private:
  void recompute_thresholds();
  void start_window();

  Params params_;
  mac::RateIndex current_;
  int frames_in_window_ = 0;
  int losses_in_window_ = 0;
  std::array<double, mac::kNumRates> mtl_{};
  std::array<double, mac::kNumRates> ori_{};
};

}  // namespace sh::rate
