// SampleRate (Bicket, MIT 2005): the static-channel workhorse.
//
// Picks the rate with the lowest average transmission time per successfully
// delivered packet over a sliding history window (10 seconds by default),
// and spends a fraction of packets sampling other rates that could plausibly
// do better. Long history smooths over short-term fading — excellent when
// static, and exactly what goes stale when the device moves (paper §3.5).
//
// The window length is SampleRate's key parameter; the thesis post-processes
// each trace to pick the best value, so the benches sweep `window` and report
// the per-trace best, reproducing that favourable treatment.
#pragma once

#include <array>
#include <deque>

#include "rate/adapter.h"
#include "util/rng.h"

namespace sh::rate {

class SampleRateAdapter final : public RateAdapter {
 public:
  struct Params {
    Duration window = 10 * kSecond;
    int sample_every = 10;          ///< Every Nth packet samples a rate.
    int payload_bytes = 1000;
    int max_consecutive_failures = 4;  ///< Excludes a rate from sampling.
  };

  SampleRateAdapter() : SampleRateAdapter(Params{}, util::Rng{42}) {}
  SampleRateAdapter(Params params, util::Rng rng);

  std::string_view name() const override { return "SampleRate"; }
  void on_packet_start(Time now) override;
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void reset() override;

  /// Current best rate by average tx time (what a non-sample packet uses).
  mac::RateIndex best_rate(Time now);

  const Params& params() const noexcept { return params_; }

 private:
  struct Outcome {
    Time when;
    bool acked;
  };
  struct RateStats {
    std::deque<Outcome> outcomes;
    std::size_t successes = 0;
    int consecutive_failures = 0;
  };

  void prune(Time now, RateStats& stats);
  /// Average airtime per delivered packet at `r`; lossless airtime when the
  /// rate has no history (optimism drives initial exploration), +inf when
  /// everything in the window failed.
  double avg_tx_time_us(Time now, mac::RateIndex r);
  double lossless_tx_time_us(mac::RateIndex r) const;

  Params params_;
  util::Rng rng_;
  std::array<RateStats, mac::kNumRates> stats_{};
  int packet_counter_ = 0;
  int chain_failures_ = 0;  ///< Failures within the current retry chain.
};

}  // namespace sh::rate
