// The hint-aware bit rate adaptation protocol (paper §3.2).
//
// Runs SampleRate while the receiver is static and RapidSample while it is
// mobile, switching on the receiver's movement hint (delivered over the Hint
// Protocol; here abstracted as a query function so the harness can wire it
// to a HintStore, to a simulated detector with realistic latency, or to
// ground truth for oracle ablations). On each switch the newly activated
// protocol is reset: the channel regime just changed, so history accumulated
// under the other regime is not just useless but misleading.
#pragma once

#include <functional>
#include <memory>

#include "core/hint_store.h"
#include "rate/adapter.h"
#include "rate/rapid_sample.h"
#include "rate/sample_rate.h"

namespace sh::rate {

class HintAwareRateAdapter final : public RateAdapter {
 public:
  /// Returns the receiver's movement state as known at `now`.
  using MovingQuery = std::function<bool(Time)>;

  struct Params {
    RapidSample::Params rapid{};
    SampleRateAdapter::Params sample_rate{};
    bool reset_on_switch = true;  ///< Ablation knob.
  };

  HintAwareRateAdapter(MovingQuery query, util::Rng rng)
      : HintAwareRateAdapter(std::move(query), rng, Params{}) {}
  HintAwareRateAdapter(MovingQuery query, util::Rng rng, Params params);

  /// Convenience: wires the query to a HintStore entry for `receiver`,
  /// treating hints older than `max_age` (or absent) as "static" — the
  /// legacy-compatible default.
  static MovingQuery store_query(const core::HintStore& store,
                                 sim::NodeId receiver,
                                 Duration max_age = 5 * kSecond);

  std::string_view name() const override { return "HintAware"; }
  void on_packet_start(Time now) override;
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void on_snr(Time now, double snr_db) override;
  void reset() override;

  bool mobile_mode() const noexcept { return mobile_mode_; }

 private:
  RateAdapter& active() noexcept;
  void maybe_switch(Time now);

  MovingQuery query_;
  Params params_;
  RapidSample rapid_;
  SampleRateAdapter sample_rate_;
  bool mobile_mode_ = false;
};

}  // namespace sh::rate
