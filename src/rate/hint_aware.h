// The hint-aware bit rate adaptation protocol (paper §3.2).
//
// Runs SampleRate while the receiver is static and RapidSample while it is
// mobile, switching on the receiver's movement hint (delivered over the Hint
// Protocol; here abstracted as a query function so the harness can wire it
// to a HintStore, to a simulated detector with realistic latency, or to
// ground truth for oracle ablations). On each switch the newly activated
// protocol is reset: the channel regime just changed, so history accumulated
// under the other regime is not just useless but misleading.
//
// Graceful degradation: a HintQuery may answer nullopt — "I no longer know"
// — when the hint feed is dead or stale. The adapter then holds its current
// mode for `stale_hold` (a brief gap should not thrash the protocol) and
// afterwards falls back to SampleRate, the hint-free baseline, until the
// feed recovers. A plain MovingQuery never answers nullopt, so legacy users
// never enter the degraded path and behave exactly as before.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/hint_store.h"
#include "rate/adapter.h"
#include "rate/rapid_sample.h"
#include "rate/sample_rate.h"

namespace sh::rate {

class HintAwareRateAdapter final : public RateAdapter {
 public:
  /// Returns the receiver's movement state as known at `now`.
  using MovingQuery = std::function<bool(Time)>;

  /// Movement query that can admit ignorance: nullopt means no sufficiently
  /// fresh hint exists. Distinct struct (not an alias) so a bool-returning
  /// lambda cannot ambiguously convert to both query forms.
  struct HintQuery {
    std::function<std::optional<bool>(Time)> fn;
  };

  struct Params {
    RapidSample::Params rapid{};
    SampleRateAdapter::Params sample_rate{};
    bool reset_on_switch = true;  ///< Ablation knob.
    /// How long a nullopt-answering query may ride the last known mode
    /// before the adapter degrades to SampleRate.
    Duration stale_hold = kSecond;
  };

  HintAwareRateAdapter(MovingQuery query, util::Rng rng)
      : HintAwareRateAdapter(std::move(query), rng, Params{}) {}
  HintAwareRateAdapter(MovingQuery query, util::Rng rng, Params params);
  HintAwareRateAdapter(HintQuery query, util::Rng rng)
      : HintAwareRateAdapter(std::move(query), rng, Params{}) {}
  HintAwareRateAdapter(HintQuery query, util::Rng rng, Params params);

  /// Convenience: wires the query to a HintStore entry for `receiver`,
  /// treating hints older than `max_age` (or absent) as "static" — the
  /// legacy-compatible default.
  static MovingQuery store_query(const core::HintStore& store,
                                 sim::NodeId receiver,
                                 Duration max_age = 5 * kSecond);

  /// Degradation-aware store wiring: answers nullopt once the store's
  /// receive watermark for the receiver's movement hint is older than
  /// `max_age` (or was never set), so a dead hint channel demotes the
  /// adapter to its SampleRate baseline instead of freezing the last mode.
  static HintQuery store_hint_query(const core::HintStore& store,
                                    sim::NodeId receiver,
                                    Duration max_age = 5 * kSecond);

  std::string_view name() const override { return "HintAware"; }
  void on_packet_start(Time now) override;
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void on_snr(Time now, double snr_db) override;
  void reset() override;

  bool mobile_mode() const noexcept { return mobile_mode_; }
  /// True while the adapter is running its hint-free fallback because the
  /// query stopped answering.
  bool degraded() const noexcept { return degraded_; }

 private:
  RateAdapter& active() noexcept;
  void maybe_switch(Time now);

  HintQuery query_;
  Params params_;
  RapidSample rapid_;
  SampleRateAdapter sample_rate_;
  bool mobile_mode_ = false;
  bool degraded_ = false;
  bool have_signal_ = false;
  Time last_signal_ = 0;
};

}  // namespace sh::rate
