#include "rate/hint_aware.h"

namespace sh::rate {

HintAwareRateAdapter::HintAwareRateAdapter(MovingQuery query, util::Rng rng,
                                           Params params)
    : query_(std::move(query)),
      params_(params),
      rapid_(params.rapid),
      sample_rate_(params.sample_rate, rng) {}

HintAwareRateAdapter::MovingQuery HintAwareRateAdapter::store_query(
    const core::HintStore& store, sim::NodeId receiver, Duration max_age) {
  return [&store, receiver, max_age](Time now) {
    return store.is_moving(receiver, now, max_age, /*fallback=*/false);
  };
}

RateAdapter& HintAwareRateAdapter::active() noexcept {
  if (mobile_mode_) return rapid_;
  return sample_rate_;
}

void HintAwareRateAdapter::maybe_switch(Time now) {
  const bool mobile = query_(now);
  if (mobile == mobile_mode_) return;
  mobile_mode_ = mobile;
  if (params_.reset_on_switch) active().reset();
}

void HintAwareRateAdapter::on_packet_start(Time now) {
  active().on_packet_start(now);
}

mac::RateIndex HintAwareRateAdapter::pick_rate(Time now) {
  maybe_switch(now);
  return active().pick_rate(now);
}

void HintAwareRateAdapter::on_result(Time now, mac::RateIndex rate_used,
                                     bool acked) {
  active().on_result(now, rate_used, acked);
}

void HintAwareRateAdapter::on_snr(Time now, double snr_db) {
  active().on_snr(now, snr_db);
}

void HintAwareRateAdapter::reset() {
  rapid_.reset();
  sample_rate_.reset();
  mobile_mode_ = false;
}

}  // namespace sh::rate
