#include "rate/hint_aware.h"

namespace sh::rate {

HintAwareRateAdapter::HintAwareRateAdapter(MovingQuery query, util::Rng rng,
                                           Params params)
    : HintAwareRateAdapter(
          HintQuery{[q = std::move(query)](Time now) {
            return std::optional<bool>(q(now));
          }},
          rng, params) {}

HintAwareRateAdapter::HintAwareRateAdapter(HintQuery query, util::Rng rng,
                                           Params params)
    : query_(std::move(query)),
      params_(params),
      rapid_(params.rapid),
      sample_rate_(params.sample_rate, rng) {}

HintAwareRateAdapter::MovingQuery HintAwareRateAdapter::store_query(
    const core::HintStore& store, sim::NodeId receiver, Duration max_age) {
  return [&store, receiver, max_age](Time now) {
    return store.is_moving(receiver, now, max_age, /*fallback=*/false);
  };
}

HintAwareRateAdapter::HintQuery HintAwareRateAdapter::store_hint_query(
    const core::HintStore& store, sim::NodeId receiver, Duration max_age) {
  return HintQuery{
      [&store, receiver, max_age](Time now) -> std::optional<bool> {
        const auto age = store.age(receiver, core::HintType::kMovement, now);
        if (!age || *age > max_age) return std::nullopt;
        const auto hint = store.latest(receiver, core::HintType::kMovement);
        if (!hint) return std::nullopt;
        return hint->as_bool();
      }};
}

RateAdapter& HintAwareRateAdapter::active() noexcept {
  if (mobile_mode_) return rapid_;
  return sample_rate_;
}

void HintAwareRateAdapter::maybe_switch(Time now) {
  const std::optional<bool> mobile = query_.fn(now);
  if (mobile.has_value()) {
    have_signal_ = true;
    last_signal_ = now;
    degraded_ = false;
    if (*mobile == mobile_mode_) return;
    mobile_mode_ = *mobile;
    if (params_.reset_on_switch) active().reset();
    return;
  }
  // The feed stopped answering. Ride the last known mode through a brief
  // gap, then fall back to the hint-free baseline (SampleRate).
  if (degraded_) return;
  if (have_signal_ && now - last_signal_ <= params_.stale_hold) return;
  degraded_ = true;
  if (mobile_mode_) {
    mobile_mode_ = false;
    if (params_.reset_on_switch) active().reset();
  }
}

void HintAwareRateAdapter::on_packet_start(Time now) {
  active().on_packet_start(now);
}

mac::RateIndex HintAwareRateAdapter::pick_rate(Time now) {
  maybe_switch(now);
  return active().pick_rate(now);
}

void HintAwareRateAdapter::on_result(Time now, mac::RateIndex rate_used,
                                     bool acked) {
  active().on_result(now, rate_used, acked);
}

void HintAwareRateAdapter::on_snr(Time now, double snr_db) {
  active().on_snr(now, snr_db);
}

void HintAwareRateAdapter::reset() {
  rapid_.reset();
  sample_rate_.reset();
  mobile_mode_ = false;
  degraded_ = false;
  have_signal_ = false;
  last_signal_ = 0;
}

}  // namespace sh::rate
