// SNR-based rate adaptation: RBAR and CHARM.
//
// RBAR (Holland et al., MobiCom 2001) learns the receiver SNR from an
// RTS/CTS exchange immediately before each data frame and maps the *latest*
// SNR to a rate. CHARM (Judd et al., MobiSys 2008) avoids the RTS/CTS
// overhead by averaging SNR observed on frames overheard from the receiver
// over a time window. The paper (§3.5) finds the instantaneous variant wins
// while mobile (averages go stale) and the averaged variant wins while
// static (robust to short-term fades) — one more instance of the
// static/mobile split.
//
// Both protocols need an SNR-to-rate mapping trained per environment; these
// implementations use the library's ground-truth SNR model, i.e. perfectly
// trained — the favourable treatment the paper also grants them.
#pragma once

#include <deque>

#include "rate/adapter.h"

namespace sh::rate {

class Rbar final : public RateAdapter {
 public:
  struct Params {
    double target_delivery = 0.9;  ///< Delivery goal for the chosen rate.
    int payload_bytes = 1000;
    /// Systematic error of the trained SNR-to-rate map (dB, positive =
    /// optimistic). Real deployments train the map per environment and
    /// carry a residual bias; 0 would be an oracle map.
    double calibration_bias_db = 0.3;
  };

  Rbar() : Rbar(Params{}) {}
  explicit Rbar(Params params);

  std::string_view name() const override { return "RBAR"; }
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void on_snr(Time now, double snr_db) override;
  void reset() override;

 private:
  Params params_;
  double last_snr_db_ = 0.0;
  bool have_snr_ = false;
};

class Charm final : public RateAdapter {
 public:
  struct Params {
    Duration window = kSecond;  ///< SNR averaging window.
    double target_delivery = 0.9;
    int payload_bytes = 1000;
    /// Same trained-map bias as Rbar::Params::calibration_bias_db.
    double calibration_bias_db = 0.3;
  };

  Charm() : Charm(Params{}) {}
  explicit Charm(Params params);

  std::string_view name() const override { return "CHARM"; }
  mac::RateIndex pick_rate(Time now) override;
  void on_result(Time now, mac::RateIndex rate_used, bool acked) override;
  void on_snr(Time now, double snr_db) override;
  void reset() override;

  /// Mean SNR currently in the window (0 when empty) — for tests.
  double mean_snr_db() const noexcept;

 private:
  void prune(Time now);

  Params params_;
  std::deque<std::pair<Time, double>> history_;
  double sum_snr_ = 0.0;
};

}  // namespace sh::rate
