// Full-protocol trace replay: the hint path is simulated too.
//
// run_trace() treats the receiver's movement state as an oracle query; this
// variant closes the loop the way the paper's architecture actually works:
//  * the receiver runs the accelerometer + jerk detector over the SAME
//    mobility scenario that shaped the channel;
//  * its current movement hint rides to the sender in the reserved bit of
//    every link-layer ACK (§2.3's zero-overhead mechanism) — so the sender
//    only learns anything when a packet is DELIVERED;
//  * during long TCP stalls the receiver emits standalone HINT frames,
//    themselves subject to the channel's 6M fate.
// Hint staleness therefore emerges from loss and traffic patterns instead
// of being injected as a parameter.
#pragma once

#include "channel/trace.h"
#include "fault/fault_config.h"
#include "rate/trace_runner.h"
#include "sim/mobility.h"

namespace sh::rate {

struct HintedRunResult {
  RunResult run;
  /// Mean delay between a detector transition at the receiver and the
  /// sender's view reflecting it (across observed transitions).
  double mean_hint_delay_s = 0.0;
  std::size_t detector_transitions = 0;
  std::size_t standalone_hint_frames = 0;
  /// Fault accounting (all zero when `fault` is null).
  std::uint64_t sensor_reports_dropped = 0;
  std::uint64_t hint_deliveries_dropped = 0;
};

struct HintedRunConfig {
  RunConfig run{};
  /// Seed for the receiver's accelerometer stream.
  std::uint64_t sensor_seed = 1;
  /// Receiver emits a standalone hint frame when its hint changed and no
  /// ACK has carried it for this long.
  Duration standalone_after = 100 * kMillisecond;
  /// Fault injection. A null config takes the exact legacy code path:
  /// sensor faults perturb the receiver's accelerometer stream (dropout
  /// starves the detector), hint drop faults eat individual hint carriages
  /// (ACK bit or standalone frame), and extra_staleness backdates the
  /// sender's view watermark.
  fault::FaultConfig fault{};
  /// Seed for the fault plan (exp::RunContext::fault_seed in sweeps).
  std::uint64_t fault_seed = 0;
  /// Sender-side degradation watermark: when > 0, a sender view that has
  /// not been refreshed for this long answers "unknown" and the HintAware
  /// adapter falls back to SampleRate after its stale_hold. 0 = legacy
  /// trust-forever behavior.
  Duration hint_max_age = 0;
};

/// Replays `trace` through the full hint-aware stack. `scenario` must be
/// the same mobility script the trace was generated from (the paper's
/// receiver carries both the radio and the accelerometer).
HintedRunResult run_trace_with_hint_protocol(
    const channel::PacketFateTrace& trace,
    const sim::MobilityScenario& scenario, const HintedRunConfig& config);

}  // namespace sh::rate
