// Full-protocol trace replay: the hint path is simulated too.
//
// run_trace() treats the receiver's movement state as an oracle query; this
// variant closes the loop the way the paper's architecture actually works:
//  * the receiver runs the accelerometer + jerk detector over the SAME
//    mobility scenario that shaped the channel;
//  * its current movement hint rides to the sender in the reserved bit of
//    every link-layer ACK (§2.3's zero-overhead mechanism) — so the sender
//    only learns anything when a packet is DELIVERED;
//  * during long TCP stalls the receiver emits standalone HINT frames,
//    themselves subject to the channel's 6M fate.
// Hint staleness therefore emerges from loss and traffic patterns instead
// of being injected as a parameter.
#pragma once

#include "channel/trace.h"
#include "rate/trace_runner.h"
#include "sim/mobility.h"

namespace sh::rate {

struct HintedRunResult {
  RunResult run;
  /// Mean delay between a detector transition at the receiver and the
  /// sender's view reflecting it (across observed transitions).
  double mean_hint_delay_s = 0.0;
  std::size_t detector_transitions = 0;
  std::size_t standalone_hint_frames = 0;
};

struct HintedRunConfig {
  RunConfig run{};
  /// Seed for the receiver's accelerometer stream.
  std::uint64_t sensor_seed = 1;
  /// Receiver emits a standalone hint frame when its hint changed and no
  /// ACK has carried it for this long.
  Duration standalone_after = 100 * kMillisecond;
};

/// Replays `trace` through the full hint-aware stack. `scenario` must be
/// the same mobility script the trace was generated from (the paper's
/// receiver carries both the radio and the accelerometer).
HintedRunResult run_trace_with_hint_protocol(
    const channel::PacketFateTrace& trace,
    const sim::MobilityScenario& scenario, const HintedRunConfig& config);

}  // namespace sh::rate
