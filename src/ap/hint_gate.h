// HintFreshnessGate: hysteresis between "trust the hint feed" and "run the
// hint-free baseline".
//
// AP-side policies (adaptive disassociation, mobile-favoring scheduling,
// lifetime-scored association) act on client hints that arrive over a lossy
// channel. Flipping a policy on and off at every missed update is worse than
// either steady state — a client would be parked and unparked, favored and
// unfavored, in lockstep with channel noise. The gate trips to "baseline"
// only after the feed has been silent for `engage_after`, and re-arms only
// after it has been continuously fresh again for `release_after`, so an
// intermittent feed settles into the baseline instead of oscillating.
#pragma once

#include "util/time.h"

namespace sh::ap {

class HintFreshnessGate {
 public:
  struct Params {
    /// Silence needed before the gate trips to the hint-free baseline.
    Duration engage_after = kSecond;
    /// Continuous freshness needed before a tripped gate trusts hints again.
    Duration release_after = 3 * kSecond;
  };

  HintFreshnessGate() : HintFreshnessGate(Params{}) {}
  explicit HintFreshnessGate(Params params) : params_(params) {}

  /// Feeds one observation — was a sufficiently fresh hint available at
  /// `now`? — and returns whether hint-aware behavior is currently allowed.
  /// `now` must be non-decreasing across calls.
  bool update(Time now, bool fresh) {
    if (fresh) {
      if (!was_fresh_) fresh_since_ = now;
      was_fresh_ = true;
      ever_fresh_ = true;
      last_fresh_ = now;
      if (tripped_ && now - fresh_since_ >= params_.release_after) {
        tripped_ = false;
      }
    } else {
      was_fresh_ = false;
      if (!tripped_ &&
          (!ever_fresh_ || now - last_fresh_ > params_.engage_after)) {
        tripped_ = true;
      }
    }
    return !tripped_;
  }

  /// Current verdict without feeding a new observation.
  bool allowed() const noexcept { return !tripped_; }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  bool tripped_ = false;
  bool was_fresh_ = false;
  bool ever_fresh_ = false;
  Time last_fresh_ = 0;
  Time fresh_since_ = 0;
};

}  // namespace sh::ap
