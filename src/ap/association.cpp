#include "ap/association.h"

#include <algorithm>
#include <cassert>

#include "core/hints.h"

namespace sh::ap {

int rssi_bucket(double rssi_dbm) noexcept {
  if (rssi_dbm < -80.0) return 0;
  if (rssi_dbm < -76.0) return 1;
  if (rssi_dbm < -72.0) return 2;
  if (rssi_dbm < -66.0) return 3;
  if (rssi_dbm < -58.0) return 4;
  return 5;
}

int approach_class(double heading_deg, double bearing_to_ap_deg,
                   bool moving) noexcept {
  if (!moving) return 0;
  const double diff = core::heading_difference(heading_deg, bearing_to_ap_deg);
  if (diff <= 60.0) return 1;
  if (diff >= 120.0) return -1;
  return 0;
}

AssociationScorer::AssociationScorer(Params params) : params_(params) {}

std::size_t AssociationScorer::index(const AssociationFeatures& features) {
  assert(features.approach >= -1 && features.approach <= 1);
  assert(features.rssi_bucket >= 0 && features.rssi_bucket < kRssiBuckets);
  const std::size_t m = features.moving ? 1 : 0;
  const auto a = static_cast<std::size_t>(features.approach + 1);
  const auto r = static_cast<std::size_t>(features.rssi_bucket);
  return (m * 3 + a) * kRssiBuckets + r;
}

void AssociationScorer::record(const AssociationFeatures& features,
                               double lifetime_s) {
  Cell& cell = cells_[index(features)];
  cell.ewma_lifetime_s =
      cell.count == 0
          ? lifetime_s
          : params_.ewma_alpha * lifetime_s +
                (1.0 - params_.ewma_alpha) * cell.ewma_lifetime_s;
  ++cell.count;
}

double AssociationScorer::predict_lifetime_s(
    const AssociationFeatures& features) const {
  const Cell& cell = cells_[index(features)];
  if (cell.count == 0) {
    return params_
        .prior_lifetime_s[static_cast<std::size_t>(features.rssi_bucket)];
  }
  return cell.ewma_lifetime_s;
}

std::size_t AssociationScorer::observations(
    const AssociationFeatures& features) const {
  return cells_[index(features)].count;
}

std::optional<sim::NodeId> choose_strongest_rssi(
    std::span<const ApCandidate> candidates) {
  std::optional<sim::NodeId> best;
  double best_rssi = -1e9;
  for (const auto& c : candidates) {
    if (c.rssi_dbm > best_rssi) {
      best_rssi = c.rssi_dbm;
      best = c.ap;
    }
  }
  return best;
}

std::optional<sim::NodeId> choose_hint_aware(
    const AssociationScorer& scorer, std::span<const ApCandidate> candidates,
    bool moving, double heading_deg, double min_viable_rssi_dbm) {
  // Hints rank APs whose signals are comparable; a hint never justifies a
  // signal tens of dB weaker. The floor is therefore the stricter of the
  // absolute viability limit and "within 8 dB of the strongest candidate".
  double strongest = -1e9;
  for (const auto& c : candidates) strongest = std::max(strongest, c.rssi_dbm);
  const double floor_dbm = std::max(min_viable_rssi_dbm, strongest - 8.0);

  std::optional<sim::NodeId> best;
  double best_score = -1e9;
  double best_rssi = -1e9;
  for (const auto& c : candidates) {
    if (c.rssi_dbm < floor_dbm) continue;
    AssociationFeatures features;
    features.moving = moving;
    features.approach = approach_class(heading_deg, c.bearing_deg, moving);
    features.rssi_bucket = rssi_bucket(c.rssi_dbm);
    const double score = scorer.predict_lifetime_s(features);
    if (score > best_score ||
        (score == best_score && c.rssi_dbm > best_rssi)) {
      best_score = score;
      best_rssi = c.rssi_dbm;
      best = c.ap;
    }
  }
  if (!best) return choose_strongest_rssi(candidates);
  return best;
}

std::optional<sim::NodeId> choose_hint_aware(
    const AssociationScorer& scorer, std::span<const ApCandidate> candidates,
    std::optional<bool> moving, double heading_deg,
    double min_viable_rssi_dbm) {
  if (!moving.has_value()) return choose_strongest_rssi(candidates);
  return choose_hint_aware(scorer, candidates, *moving, heading_deg,
                           min_viable_rssi_dbm);
}

}  // namespace sh::ap
