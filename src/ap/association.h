// Adaptive association (paper §5.2.1).
//
// Clients append mobility hints (movement, heading) to probe requests; the
// AP side — or a database consulted by the client — scores each candidate AP
// by its *predicted association lifetime*, learned online from completed
// associations, and the client picks the best score instead of the strongest
// signal. The learner is a small table over coarse feature buckets
// (moving x approach-direction x RSSI), seeded with an RSSI-only prior so
// behaviour before training matches the legacy policy.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "sim/ids.h"

namespace sh::ap {

struct AssociationFeatures {
  bool moving = false;
  /// -1 receding, 0 no heading info / static, +1 approaching the AP.
  int approach = 0;
  /// RSSI bucket 0 (weak) .. 3 (strong).
  int rssi_bucket = 0;
};

/// Maps a raw RSSI in dBm to the 6 learner buckets
/// (<-80, -80..-76, -76..-72, -72..-66, -66..-58, >=-58). The fine edges in
/// the -80..-66 range matter: that is where "strong enough to pick" and
/// "about to die" must be told apart when choosing an AP ahead.
int rssi_bucket(double rssi_dbm) noexcept;

inline constexpr int kRssiBuckets = 6;

/// Classifies approach from the client heading and the bearing toward the
/// AP: within 60 degrees = approaching, within 60 of the reverse = receding.
int approach_class(double heading_deg, double bearing_to_ap_deg,
                   bool moving) noexcept;

class AssociationScorer {
 public:
  struct Params {
    double ewma_alpha = 0.3;
    /// RSSI-only prior lifetimes (seconds) per bucket, used until a feature
    /// cell has observations.
    std::array<double, kRssiBuckets> prior_lifetime_s{6.0,  12.0, 22.0,
                                                      35.0, 45.0, 55.0};
  };

  AssociationScorer() : AssociationScorer(Params{}) {}
  explicit AssociationScorer(Params params);

  /// Records a completed association of `lifetime_s` under `features`.
  void record(const AssociationFeatures& features, double lifetime_s);

  /// Predicted association lifetime for `features` (the score clients
  /// compare across APs).
  double predict_lifetime_s(const AssociationFeatures& features) const;

  /// Observations recorded into the cell for `features`.
  std::size_t observations(const AssociationFeatures& features) const;

 private:
  struct Cell {
    double ewma_lifetime_s = 0.0;
    std::size_t count = 0;
  };
  static std::size_t index(const AssociationFeatures& features);

  Params params_;
  std::array<Cell, 2 * 3 * kRssiBuckets> cells_{};
};

/// One candidate AP as seen in a scan.
struct ApCandidate {
  sim::NodeId ap = 0;
  double rssi_dbm = -90.0;
  double bearing_deg = 0.0;  ///< Direction from client to AP.
};

/// Legacy policy: strongest signal wins.
std::optional<sim::NodeId> choose_strongest_rssi(
    std::span<const ApCandidate> candidates);

/// Hint-aware policy: highest predicted lifetime wins among candidates
/// strong enough to sustain an association at all (hints complement signal
/// strength, they do not replace it — §5.2.1); RSSI breaks ties. Falls back
/// to the strongest signal when nothing clears the viability floor.
std::optional<sim::NodeId> choose_hint_aware(
    const AssociationScorer& scorer, std::span<const ApCandidate> candidates,
    bool moving, double heading_deg, double min_viable_rssi_dbm = -75.0);

/// Degradation-aware variant: `moving` is nullopt when no fresh movement
/// hint exists, in which case the choice degrades to the legacy
/// strongest-signal policy rather than scoring on a guessed feature. A bool
/// argument still binds to the overload above (exact match), so existing
/// callers are unaffected.
std::optional<sim::NodeId> choose_hint_aware(
    const AssociationScorer& scorer, std::span<const ApCandidate> candidates,
    std::optional<bool> moving, double heading_deg,
    double min_viable_rssi_dbm = -75.0);

}  // namespace sh::ap
