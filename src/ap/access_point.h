// Access-point downlink simulator (paper §5.2, Fig 5-1).
//
// Models the behaviours the paper observed in a commercial AP and the
// hint-aware fixes it proposes:
//  * per-client ARF-style rate fallback (consecutive ACK losses step the
//    rate down, successes step it back up);
//  * a retry chain per frame (each retry burns airtime);
//  * frame-level or time-based fairness between backlogged clients;
//  * pruning of unreachable clients only after a long timeout (the default
//    that produces the Fig 5-1 collapse), or immediately upon a movement
//    hint + loss (the paper's adaptive disassociation), after which the
//    parked client is probed occasionally and cheaply;
//  * optional scheduling bias towards mobile clients (§5.2.2).
//
// The simulation is a sequential airtime loop: the scheduler picks a client,
// the AP transmits one frame (with retries), and the clock advances by the
// airtime consumed.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/hint_store.h"
#include "mac/airtime.h"
#include "mac/rates.h"
#include "sim/ids.h"
#include "transport/throughput_meter.h"
#include "util/rng.h"
#include "util/time.h"

namespace sh::ap {

/// Per-client downlink description supplied by the experiment: the delivery
/// probability of a frame sent to this client at a given time and rate
/// (0 when the client has left radio range).
using LinkModel = std::function<double(Time, mac::RateIndex)>;

struct ClientConfig {
  sim::NodeId id = 0;
  LinkModel link;
  bool backlogged = true;  ///< Infinite downlink demand.
};

class AccessPointSim {
 public:
  enum class Fairness { kFrame, kTime };

  struct Params {
    Fairness fairness = Fairness::kFrame;
    int retry_limit = 7;
    Duration prune_timeout = 10 * kSecond;  ///< Default (hint-free) pruning.
    bool hint_aware_pruning = false;
    int park_after_failures = 3;  ///< Hint + this many losses parks a client.
    Duration parked_probe_interval = kSecond;
    int payload_bytes = 1500;
    int probe_payload_bytes = 40;
    int arf_down_after = 2;   ///< Consecutive losses before stepping down.
    int arf_up_after = 10;    ///< Consecutive successes before stepping up.
    bool favor_mobile_clients = false;  ///< §5.2.2 adaptive scheduling.
    double mobile_weight = 2.0;
    /// A movement hint older than this no longer drives hint-aware pruning
    /// or scheduling — the AP reverts to its hint-free defaults for that
    /// client until a new hint arrives. 0 = trust hints forever (legacy).
    Duration hint_max_age = 0;
  };

  AccessPointSim(Params params, std::uint64_t seed);

  void add_client(ClientConfig config);

  /// Injects a movement hint received from `client` (via the Hint Protocol)
  /// that will take effect once the simulation clock reaches `when`.
  void schedule_hint(Time when, sim::NodeId client, bool moving);

  /// Runs the downlink until the simulated clock reaches `end`.
  void run_until(Time end);

  Time now() const noexcept { return now_; }

  struct ClientStats {
    transport::ThroughputMeter meter{kSecond};
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_lost = 0;       ///< Attempts that got no ACK.
    std::uint64_t probe_frames = 0;      ///< Park-mode probes sent.
    bool pruned = false;
    Time pruned_at = 0;
    bool parked = false;
    mac::RateIndex current_rate = mac::fastest_rate();
  };
  const ClientStats& stats(sim::NodeId client) const;

 private:
  struct Client {
    ClientConfig config;
    ClientStats stats;
    int consecutive_losses = 0;
    int consecutive_successes = 0;
    Time last_ack = 0;
    Time next_probe_at = 0;
    double airtime_used_us = 0.0;  ///< For time-based fairness.
    bool moving_hint = false;
    Time last_hint_at = 0;
    bool ever_hinted = false;
  };

  Client* pick_client();
  void serve_data_frame(Client& client);
  void serve_parked_probe(Client& client);
  void apply_due_hints();
  void apply_arf(Client& client, bool acked);
  double fairness_key(const Client& client) const;
  /// The client's movement hint, gated by Params::hint_max_age.
  bool usable_moving_hint(const Client& client) const;

  Params params_;
  util::Rng rng_;
  Time now_ = 0;
  std::vector<Client> clients_;
  struct PendingHint {
    Time when;
    sim::NodeId client;
    bool moving;
  };
  std::vector<PendingHint> pending_hints_;
  std::size_t next_rr_ = 0;  ///< Round-robin cursor for frame fairness.
};

}  // namespace sh::ap
