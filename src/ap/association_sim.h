// Corridor walk evaluation for adaptive association (paper §5.2.1).
//
// A client walks back and forth along a corridor of access points, scanning
// periodically and (re)associating per policy. The legacy policy picks the
// strongest signal — which, mid-stride, is usually the AP just *passed*;
// the hint-aware policy feeds movement + heading hints to the learned
// lifetime scorer, which discovers that APs ahead keep clients longer.
// Training happens online, exactly as §5.2.1 sketches: every completed
// association is reported back to the scorer with its features.
#pragma once

#include <vector>

#include "ap/association.h"
#include "util/rng.h"
#include "util/time.h"

namespace sh::ap {

struct CorridorConfig {
  int num_aps = 8;
  double ap_spacing_m = 45.0;
  double walk_speed_mps = 1.4;
  int passes = 20;              ///< Back-and-forth lengths of the corridor.
  Duration scan_interval = kSecond;
  double tx_power_dbm = -30.0;  ///< RSSI at 1 m.
  double path_loss_exponent = 3.0;
  double rssi_noise_db = 2.5;
  double disconnect_rssi_dbm = -82.0;  ///< Association dies below this.
  /// Re-associate when the policy's choice differs AND the current AP has
  /// weakened below this (sticky clients don't roam on every scan).
  double roam_rssi_dbm = -70.0;
  /// A handoff (auth + DHCP + path re-establishment) interrupts
  /// connectivity for this long — the cost that makes churn expensive and
  /// association lifetime worth optimizing (§5.2.1's motivation).
  Duration handoff_delay = 1500 * kMillisecond;
  std::uint64_t seed = 1;
};

enum class AssociationPolicy { kStrongestRssi, kHintAware };

struct CorridorResult {
  std::size_t associations = 0;       ///< Completed association episodes.
  std::size_t handoffs = 0;           ///< AP switches (episodes - gaps).
  double mean_lifetime_s = 0.0;
  double median_lifetime_s = 0.0;
  double connected_fraction = 0.0;    ///< Time with a live association.
};

/// Runs the corridor walk. For kHintAware, `scorer` is trained online and
/// consulted for every choice; pass a pre-trained scorer to evaluate
/// without the cold start, or a fresh one to measure learning end to end.
CorridorResult run_corridor(AssociationPolicy policy,
                            AssociationScorer& scorer,
                            const CorridorConfig& config);

}  // namespace sh::ap
