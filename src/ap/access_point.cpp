#include "ap/access_point.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace sh::ap {

AccessPointSim::AccessPointSim(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  assert(params_.retry_limit >= 0);
  assert(params_.payload_bytes > 0);
}

void AccessPointSim::add_client(ClientConfig config) {
  assert(config.link);
  Client client;
  client.config = std::move(config);
  clients_.push_back(std::move(client));
}

void AccessPointSim::schedule_hint(Time when, sim::NodeId client,
                                   bool moving) {
  pending_hints_.push_back(PendingHint{when, client, moving});
  std::sort(pending_hints_.begin(), pending_hints_.end(),
            [](const PendingHint& a, const PendingHint& b) {
              return a.when < b.when;
            });
}

void AccessPointSim::apply_due_hints() {
  while (!pending_hints_.empty() && pending_hints_.front().when <= now_) {
    const PendingHint hint = pending_hints_.front();
    pending_hints_.erase(pending_hints_.begin());
    for (auto& client : clients_) {
      if (client.config.id != hint.client) continue;
      client.moving_hint = hint.moving;
      client.last_hint_at = hint.when;
      client.ever_hinted = true;
      // A "static again" hint immediately unparks (paper §5.2.3): the
      // client says it is stable, so resume the aggressive default.
      if (!hint.moving && client.stats.parked) {
        client.stats.parked = false;
        client.consecutive_losses = 0;
      }
    }
  }
}

bool AccessPointSim::usable_moving_hint(const Client& client) const {
  if (!client.moving_hint) return false;
  if (params_.hint_max_age <= 0) return true;  // Legacy: trust forever.
  return client.ever_hinted &&
         now_ - client.last_hint_at <= params_.hint_max_age;
}

double AccessPointSim::fairness_key(const Client& client) const {
  double weight = 1.0;
  if (params_.favor_mobile_clients && usable_moving_hint(client))
    weight = params_.mobile_weight;
  return client.airtime_used_us / weight;
}

AccessPointSim::Client* AccessPointSim::pick_client() {
  auto eligible = [this](const Client& c) {
    if (c.stats.pruned || !c.config.backlogged) return false;
    if (c.stats.parked) return now_ >= c.next_probe_at;
    return true;
  };

  if (params_.fairness == Fairness::kTime) {
    Client* best = nullptr;
    double best_key = std::numeric_limits<double>::infinity();
    for (auto& c : clients_) {
      if (!eligible(c)) continue;
      const double key = fairness_key(c);
      if (key < best_key) {
        best_key = key;
        best = &c;
      }
    }
    return best;
  }

  // Frame fairness: round robin, with mobile-favoring implemented as extra
  // turns (a weight-2 mobile client is visited twice as often).
  const std::size_t n = clients_.size();
  for (std::size_t scanned = 0; scanned < 2 * n; ++scanned) {
    Client& c = clients_[next_rr_ % n];
    ++next_rr_;
    if (!eligible(c)) continue;
    if (params_.favor_mobile_clients && !usable_moving_hint(c)) {
      // Static clients yield every other turn when mobile favoring is on
      // and at least one mobile client is eligible.
      const bool mobile_waiting =
          std::any_of(clients_.begin(), clients_.end(), [&](const Client& o) {
            return usable_moving_hint(o) && eligible(o) && &o != &c;
          });
      if (mobile_waiting && (next_rr_ % 2 == 0)) continue;
    }
    return &c;
  }
  return nullptr;
}

void AccessPointSim::apply_arf(Client& client, bool acked) {
  if (acked) {
    client.consecutive_successes++;
    client.consecutive_losses = 0;
    if (client.consecutive_successes >= params_.arf_up_after &&
        client.stats.current_rate < mac::fastest_rate()) {
      ++client.stats.current_rate;
      client.consecutive_successes = 0;
    }
  } else {
    client.consecutive_losses++;
    client.consecutive_successes = 0;
    if (client.consecutive_losses % params_.arf_down_after == 0 &&
        client.stats.current_rate > mac::slowest_rate()) {
      --client.stats.current_rate;
    }
  }
}

void AccessPointSim::serve_data_frame(Client& client) {
  bool delivered = false;
  for (int attempt = 0; attempt <= params_.retry_limit; ++attempt) {
    const mac::RateIndex rate = client.stats.current_rate;
    const Duration airtime =
        mac::attempt_duration(rate, params_.payload_bytes, attempt);
    now_ += airtime;
    client.airtime_used_us += static_cast<double>(airtime);

    const double p = client.config.link(now_, rate);
    delivered = rng_.bernoulli(p);
    apply_arf(client, delivered);
    if (delivered) break;
    ++client.stats.frames_lost;
  }

  if (delivered) {
    ++client.stats.frames_delivered;
    client.stats.meter.add(now_, static_cast<std::size_t>(params_.payload_bytes));
    client.last_ack = now_;
    return;
  }

  // Whole retry chain failed.
  if (params_.hint_aware_pruning && usable_moving_hint(client) &&
      client.consecutive_losses >= params_.park_after_failures) {
    client.stats.parked = true;
    client.next_probe_at = now_ + params_.parked_probe_interval;
    return;
  }
  if (now_ - client.last_ack >= params_.prune_timeout) {
    client.stats.pruned = true;
    client.stats.pruned_at = now_;
  }
}

void AccessPointSim::serve_parked_probe(Client& client) {
  // One short frame, no retry chain: the whole point of parking is to stop
  // paying the open-loop retransmission tax.
  const mac::RateIndex rate = mac::slowest_rate();
  const Duration airtime =
      mac::attempt_duration(rate, params_.probe_payload_bytes, /*retry=*/0);
  now_ += airtime;
  client.airtime_used_us += static_cast<double>(airtime);
  ++client.stats.probe_frames;

  if (rng_.bernoulli(client.config.link(now_, rate))) {
    client.stats.parked = false;
    client.consecutive_losses = 0;
    client.last_ack = now_;
  } else {
    client.next_probe_at = now_ + params_.parked_probe_interval;
  }
}

void AccessPointSim::run_until(Time end) {
  while (now_ < end) {
    apply_due_hints();
    Client* client = pick_client();
    if (client == nullptr) {
      // Nothing to send: idle to the next event (probe timer or hint).
      Time wake = end;
      for (const auto& c : clients_) {
        if (c.stats.parked && !c.stats.pruned)
          wake = std::min(wake, c.next_probe_at);
      }
      if (!pending_hints_.empty())
        wake = std::min(wake, pending_hints_.front().when);
      now_ = std::max(now_ + kMillisecond, wake);
      continue;
    }
    if (client->stats.parked) {
      serve_parked_probe(*client);
    } else {
      serve_data_frame(*client);
    }
  }
}

const AccessPointSim::ClientStats& AccessPointSim::stats(
    sim::NodeId client) const {
  for (const auto& c : clients_) {
    if (c.config.id == client) return c.stats;
  }
  throw std::out_of_range("unknown client id");
}

}  // namespace sh::ap
