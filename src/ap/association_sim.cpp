#include "ap/association_sim.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "util/stats.h"

namespace sh::ap {
namespace {

double rssi_at(double distance_m, const CorridorConfig& config,
               util::Rng& rng) {
  const double d = std::max(distance_m, 1.0);
  // Clients average the RSSI of several beacons per scan; model the
  // averaged measurement (4 samples) rather than a single noisy draw.
  double noise = 0.0;
  for (int i = 0; i < 4; ++i) noise += rng.normal(0.0, config.rssi_noise_db);
  return config.tx_power_dbm -
         10.0 * config.path_loss_exponent * std::log10(d) + noise / 4.0;
}

}  // namespace

CorridorResult run_corridor(AssociationPolicy policy,
                            AssociationScorer& scorer,
                            const CorridorConfig& config) {
  assert(config.num_aps >= 2);
  util::Rng rng(config.seed);

  const double corridor_length =
      static_cast<double>(config.num_aps - 1) * config.ap_spacing_m;

  struct ActiveAssociation {
    sim::NodeId ap;
    Time since;
    Time usable_from;  ///< Connectivity resumes after the handoff delay.
    AssociationFeatures features;  ///< Features at association time.
  };
  std::optional<ActiveAssociation> active;

  std::size_t handoffs = 0;
  util::RunningStats lifetimes;
  util::Percentile lifetime_dist;
  Duration connected = 0;
  Time now = 0;

  auto close_association = [&](Time when) {
    if (!active) return;
    const double lifetime_s = to_seconds(when - active->since);
    lifetimes.add(lifetime_s);
    lifetime_dist.add(lifetime_s);
    scorer.record(active->features, lifetime_s);
    active.reset();
  };

  double position = 0.0;
  double direction = 1.0;  // +1 toward the far end, -1 back.
  int passes_done = 0;
  while (passes_done < config.passes) {
    // Advance one scan interval.
    position += direction * config.walk_speed_mps *
                to_seconds(config.scan_interval);
    if (position >= corridor_length) {
      position = corridor_length;
      direction = -1.0;
      ++passes_done;
    } else if (position <= 0.0) {
      position = 0.0;
      direction = 1.0;
      ++passes_done;
    }
    now += config.scan_interval;
    const double heading = direction > 0 ? 90.0 : 270.0;  // east / west

    // Scan: candidate APs with measured RSSI and bearing.
    std::vector<ApCandidate> candidates;
    for (int ap = 0; ap < config.num_aps; ++ap) {
      const double ap_pos = static_cast<double>(ap) * config.ap_spacing_m;
      ApCandidate candidate;
      candidate.ap = static_cast<sim::NodeId>(ap + 1);
      candidate.rssi_dbm = rssi_at(std::fabs(ap_pos - position), config, rng);
      candidate.bearing_deg = ap_pos >= position ? 90.0 : 270.0;
      candidates.push_back(candidate);
    }

    // Current association health.
    if (active) {
      const auto ap_index = static_cast<std::size_t>(active->ap - 1);
      const double current_rssi = candidates[ap_index].rssi_dbm;
      if (current_rssi < config.disconnect_rssi_dbm) {
        close_association(now);
      } else {
        if (now >= active->usable_from) connected += config.scan_interval;
        if (current_rssi > config.roam_rssi_dbm) continue;  // sticky
      }
    }

    // (Re)associate per policy.
    std::optional<sim::NodeId> choice;
    if (policy == AssociationPolicy::kStrongestRssi) {
      choice = choose_strongest_rssi(candidates);
    } else {
      // Viability floor: a few dB of margin above the disconnect threshold
      // (an AP any weaker cannot sustain the association being predicted).
      choice = choose_hint_aware(scorer, candidates, /*moving=*/true, heading,
                                 config.disconnect_rssi_dbm + 3.0);
    }
    if (!choice) continue;
    if (active && active->ap == *choice) continue;
    // Switching to an AP that is itself already below the roam threshold
    // would immediately re-trigger roaming; wait unless the current link is
    // about to die (emergency roam).
    if (active) {
      const double choice_rssi =
          candidates[static_cast<std::size_t>(*choice - 1)].rssi_dbm;
      const double current_rssi =
          candidates[static_cast<std::size_t>(active->ap - 1)].rssi_dbm;
      const bool emergency =
          current_rssi < config.disconnect_rssi_dbm + 4.0;
      if (!emergency && choice_rssi < config.roam_rssi_dbm) continue;
    }

    close_association(now);
    ++handoffs;
    const auto& chosen = candidates[static_cast<std::size_t>(*choice - 1)];
    AssociationFeatures features;
    features.moving = true;
    features.approach = approach_class(heading, chosen.bearing_deg, true);
    features.rssi_bucket = rssi_bucket(chosen.rssi_dbm);
    active = ActiveAssociation{*choice, now, now + config.handoff_delay,
                               features};
  }
  close_association(now);

  CorridorResult result;
  result.associations = lifetimes.count();
  result.handoffs = handoffs;
  result.mean_lifetime_s = lifetimes.mean();
  result.median_lifetime_s =
      lifetime_dist.empty() ? 0.0 : lifetime_dist.median();
  result.connected_fraction =
      now > 0 ? to_seconds(connected) / to_seconds(now) : 0.0;
  return result;
}

}  // namespace sh::ap
