// Movement-based power saving (paper §5.4).
//
// Two hint-driven sleep rules for the WiFi radio:
//  1. If the node is unassociated, has failed to find an AP, and the
//     movement hint says it is not moving, power the radio down until the
//     next movement hint — a stationary node that found nothing will keep
//     finding nothing.
//  2. If the speed hint exceeds the useful-WiFi threshold, power down until
//     speed drops — at high vehicular speeds the association would not
//     survive long enough to be useful.
// The energy model integrates radio power over time so policies can be
// compared against an always-on baseline.
#pragma once

#include "util/time.h"

namespace sh::power {

enum class RadioState { kAwake, kSleeping };

class RadioPowerManager {
 public:
  struct Params {
    double awake_mw = 890.0;   ///< Active WiFi radio (typical 802.11a card).
    double sleep_mw = 45.0;    ///< Radio powered down, wake logic only.
    double max_useful_speed_mps = 20.0;  ///< Above this, WiFi is pointless.
    Duration rescan_interval = 30 * kSecond;  ///< Periodic scan while awake
                                              ///< and unassociated.
  };

  RadioPowerManager() : RadioPowerManager(Params{}) {}
  explicit RadioPowerManager(Params params);

  struct Inputs {
    bool associated = false;
    bool scan_found_ap = false;  ///< Result of the most recent scan.
    bool moving = false;         ///< Movement hint.
    double speed_mps = 0.0;      ///< Speed hint.
  };

  /// Advances the policy to time `now` with the current inputs, integrating
  /// energy since the previous update and returning the new radio state.
  RadioState update(Time now, const Inputs& inputs);

  RadioState state() const noexcept { return state_; }
  /// Energy consumed so far, in millijoules.
  double energy_mj() const noexcept { return energy_mj_; }
  /// Energy an always-awake radio would have consumed over the same span.
  double baseline_energy_mj() const noexcept { return baseline_mj_; }
  /// Fraction of baseline energy saved so far.
  double savings_fraction() const noexcept;

 private:
  Params params_;
  RadioState state_ = RadioState::kAwake;
  Time last_update_ = 0;
  double energy_mj_ = 0.0;
  double baseline_mj_ = 0.0;
};

}  // namespace sh::power
