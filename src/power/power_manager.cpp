#include "power/power_manager.h"

#include <cassert>

namespace sh::power {

RadioPowerManager::RadioPowerManager(Params params) : params_(params) {}

RadioState RadioPowerManager::update(Time now, const Inputs& inputs) {
  assert(now >= last_update_);
  const double dt_s = to_seconds(now - last_update_);
  const double draw_mw =
      state_ == RadioState::kAwake ? params_.awake_mw : params_.sleep_mw;
  energy_mj_ += draw_mw * dt_s;
  baseline_mj_ += params_.awake_mw * dt_s;
  last_update_ = now;

  // Rule 2 dominates: too fast for useful WiFi, sleep even if associated
  // (the association is about to die anyway).
  if (inputs.speed_mps > params_.max_useful_speed_mps) {
    state_ = RadioState::kSleeping;
    return state_;
  }
  // Rule 1: unassociated, nothing found, not moving -> nothing will change
  // until a movement hint arrives.
  if (!inputs.associated && !inputs.scan_found_ap && !inputs.moving) {
    state_ = RadioState::kSleeping;
    return state_;
  }
  state_ = RadioState::kAwake;
  return state_;
}

double RadioPowerManager::savings_fraction() const noexcept {
  if (baseline_mj_ <= 0.0) return 0.0;
  return 1.0 - energy_mj_ / baseline_mj_;
}

}  // namespace sh::power
