// Discrete-event simulation engine.
//
// A minimal, deterministic engine in the ns-3 mould: events are (time,
// sequence, callback) tuples popped in time order; ties break by scheduling
// order so runs are exactly reproducible. All higher-level simulations
// (trace replay, AP scheduling, vehicular mobility) run on this loop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace sh::sim {

/// Handle used to cancel a scheduled event.
class EventId {
 public:
  EventId() = default;
  bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class EventLoop;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Single-threaded discrete-event loop with a simulated clock.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `when` (must be >= now()).
  /// Returns a handle usable with cancel().
  EventId schedule_at(Time when, Callback cb);
  /// Schedules `cb` to run `delay` after the current time.
  EventId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs until the queue is empty or the simulated clock passes `until`
  /// (events at exactly `until` still run). Advances now() to at least
  /// `until` when given.
  void run();
  void run_until(Time until);

  /// Drops all pending events and resets the clock to 0.
  void reset();

  std::size_t pending() const noexcept { return queue_.size() - cancelled_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_one(Time until);
  bool is_cancelled(std::uint64_t seq) const;

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_seqs_;
  std::size_t cancelled_ = 0;
};

}  // namespace sh::sim
