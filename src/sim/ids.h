// Common identifier types shared across subsystems.
#pragma once

#include <cstdint>

namespace sh::sim {

/// Identifies a node (client, AP, mesh node, vehicle) within a simulation.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFU;

}  // namespace sh::sim
