#include "sim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sh::sim {

EventId EventLoop::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{std::max(when, now_), seq, std::move(cb)});
  return EventId{seq};
}

EventId EventLoop::schedule_after(Duration delay, Callback cb) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_) return false;
  if (is_cancelled(id.seq_)) return false;
  // Lazy deletion: remember the sequence number and skip it on pop. The
  // cancelled list stays small because fired events are purged as popped.
  cancelled_seqs_.push_back(id.seq_);
  ++cancelled_;
  return true;
}

bool EventLoop::is_cancelled(std::uint64_t seq) const {
  return std::find(cancelled_seqs_.begin(), cancelled_seqs_.end(), seq) !=
         cancelled_seqs_.end();
}

bool EventLoop::pop_and_run_one(Time until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > until) return false;
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    const auto it =
        std::find(cancelled_seqs_.begin(), cancelled_seqs_.end(), ev.seq);
    if (it != cancelled_seqs_.end()) {
      cancelled_seqs_.erase(it);
      --cancelled_;
      continue;
    }
    now_ = ev.when;
    ev.cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (pop_and_run_one(std::numeric_limits<Time>::max())) {
  }
}

void EventLoop::run_until(Time until) {
  while (pop_and_run_one(until)) {
  }
  now_ = std::max(now_, until);
}

void EventLoop::reset() {
  queue_ = {};
  cancelled_seqs_.clear();
  cancelled_ = 0;
  now_ = 0;
  next_seq_ = 1;
}

}  // namespace sh::sim
