// Mobility scenarios: scripted ground-truth motion of a device over time.
//
// A scenario is a sequence of phases (static / walking / vehicle, each with a
// speed). Both the channel simulator (Doppler, hence coherence time) and the
// sensor simulators (accelerometer jerk bursts, GPS speed) consume the same
// scenario, so the "hints" a detector extracts and the channel dynamics a
// protocol fights are consistent with each other — exactly the coupling the
// paper exploits.
#pragma once

#include <cassert>
#include <vector>

#include "util/time.h"

namespace sh::sim {

enum class MotionState { kStatic, kWalking, kVehicle };

/// True for any state in which the device is physically moving.
constexpr bool is_moving(MotionState s) noexcept {
  return s != MotionState::kStatic;
}

struct MobilityPhase {
  Duration duration = 0;
  MotionState state = MotionState::kStatic;
  double speed_mps = 0.0;  ///< 0 when static; walking ~1.4; vehicle 2-20.
};

/// Piecewise-constant motion script. Queries past the end of the script
/// return the last phase's state (the device keeps doing whatever it was
/// doing).
class MobilityScenario {
 public:
  MobilityScenario() = default;
  explicit MobilityScenario(std::vector<MobilityPhase> phases)
      : phases_(std::move(phases)) {
    assert(!phases_.empty());
    for ([[maybe_unused]] const auto& p : phases_) assert(p.duration >= 0);
  }

  static MobilityScenario all_static(Duration total) {
    return MobilityScenario{{{total, MotionState::kStatic, 0.0}}};
  }
  static MobilityScenario all_walking(Duration total, double speed = 1.4) {
    return MobilityScenario{{{total, MotionState::kWalking, speed}}};
  }
  static MobilityScenario all_vehicle(Duration total, double speed = 12.0) {
    return MobilityScenario{{{total, MotionState::kVehicle, speed}}};
  }
  /// The paper's mixed trace: half static then half walking (or reversed).
  static MobilityScenario static_then_walking(Duration total,
                                              bool mobile_first = false,
                                              double speed = 1.4) {
    MobilityPhase stat{total / 2, MotionState::kStatic, 0.0};
    MobilityPhase walk{total - total / 2, MotionState::kWalking, speed};
    if (mobile_first) return MobilityScenario{{walk, stat}};
    return MobilityScenario{{stat, walk}};
  }

  MotionState state_at(Time t) const noexcept { return phase_at(t).state; }
  double speed_at(Time t) const noexcept { return phase_at(t).speed_mps; }
  bool moving_at(Time t) const noexcept { return is_moving(state_at(t)); }

  Duration total_duration() const noexcept {
    Duration sum = 0;
    for (const auto& p : phases_) sum += p.duration;
    return sum;
  }

  const std::vector<MobilityPhase>& phases() const noexcept { return phases_; }

 private:
  const MobilityPhase& phase_at(Time t) const noexcept {
    static const MobilityPhase kDefault{};
    if (phases_.empty()) return kDefault;
    Time start = 0;
    for (const auto& p : phases_) {
      if (t < start + p.duration) return p;
      start += p.duration;
    }
    return phases_.back();
  }

  std::vector<MobilityPhase> phases_;
};

}  // namespace sh::sim
